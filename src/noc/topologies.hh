/**
 * @file
 * Interconnect topology backends behind the noc::InterconnectModel seam.
 *
 * A backend is a small policy type with one obligation: walk the ordered
 * hop sequence of the route src -> dst (cores and DRAM pseudo-nodes) through
 * a statically-dispatched callback. The InterconnectModel visits the backend
 * exactly once, at construction, to build its dense route/kind tables; the
 * mapping hot path then replays precomputed spans and never touches a
 * backend again — adding a topology cannot slow the SA loop down.
 *
 * Backends:
 *  - Mesh: XY dimension-order routing (the paper's default template).
 *  - FoldedTorus: shortest-wrap dimension-order routing (Sec. VI-B2).
 *  - ConcentratedRing: one ring stop per mesh row at column 0; intra-row
 *    traffic moves along the row, inter-row traffic is concentrated through
 *    the bidirectional ring of row stops (shared-bus-like scenario).
 *  - HierarchicalNop: SIAM-style two-level network — an XY mesh inside each
 *    chiplet (NoC) plus an XY mesh of chiplet gateway routers (NoP); every
 *    cross-chiplet flow funnels through the gateways. Monolithic designs
 *    degrade to the plain mesh.
 *
 * DRAM attach: mesh, torus and ring keep the paper's scheme (DRAM d ports
 * on the west edge for even d, east for odd d, entering at the endpoint's
 * row). The hierarchy attaches DRAM to the gateway of the edge chiplet in
 * the endpoint's chiplet row instead (the IO die talks NoP, not NoC).
 */

#ifndef GEMINI_NOC_TOPOLOGIES_HH
#define GEMINI_NOC_TOPOLOGIES_HH

#include <variant>

#include "src/arch/arch_config.hh"
#include "src/common/logging.hh"
#include "src/common/types.hh"
#include "src/noc/traffic_map.hh"

namespace gemini::noc::topo {

// ---- Shared geometry helpers over one ArchConfig ---------------------------

inline bool
isDramNode(const arch::ArchConfig &cfg, NodeId n)
{
    return n >= cfg.coreCount();
}

inline int
dramOf(const arch::ArchConfig &cfg, NodeId n)
{
    return n - cfg.coreCount();
}

/** Edge column (0 or xCores-1) where a DRAM's ports sit (west/east). */
inline int
dramEdgeX(const arch::ArchConfig &cfg, int dram)
{
    return (dram % 2 == 0) ? 0 : cfg.xCores - 1;
}

/** One mesh step along a linear dimension. */
inline int
stepMesh(int from, int to)
{
    return from + (to > from ? 1 : -1);
}

/**
 * One shortest-wrap step around a ring; ties resolve to the increasing
 * direction for determinism (folded torus and ring stops both use this).
 */
inline int
stepRing(int from, int to, int extent)
{
    const int fwd = (to - from + extent) % extent;
    const int bwd = (from - to + extent) % extent;
    if (fwd <= bwd)
        return (from + 1) % extent;
    return (from - 1 + extent) % extent;
}

/**
 * Shared skeleton of the edge-column DRAM attach: DRAM endpoints enter and
 * leave the fabric at the edge core on the destination's (resp. source's)
 * row, with the backend's core-to-core walk in between. CRTP: Derived
 * provides walkCoreToCore.
 */
template <typename Derived>
struct EdgeAttachBase
{
    template <typename Fn>
    void
    walkHops(const arch::ArchConfig &cfg, NodeId src, NodeId dst,
             Fn &&fn) const
    {
        if (src == dst)
            return;
        if (isDramNode(cfg, src) && isDramNode(cfg, dst)) {
            GEMINI_PANIC("DRAM-to-DRAM routes are not meaningful");
        }
        const auto &self = static_cast<const Derived &>(*this);
        if (isDramNode(cfg, src)) {
            const int dram = dramOf(cfg, src);
            const CoreId entry =
                cfg.coreAt(dramEdgeX(cfg, dram),
                           cfg.coreY(static_cast<CoreId>(dst)));
            fn(src, static_cast<NodeId>(entry));
            self.walkCoreToCore(cfg, entry, static_cast<CoreId>(dst), fn);
            return;
        }
        if (isDramNode(cfg, dst)) {
            const int dram = dramOf(cfg, dst);
            const CoreId exit =
                cfg.coreAt(dramEdgeX(cfg, dram),
                           cfg.coreY(static_cast<CoreId>(src)));
            self.walkCoreToCore(cfg, static_cast<CoreId>(src), exit, fn);
            fn(static_cast<NodeId>(exit), dst);
            return;
        }
        self.walkCoreToCore(cfg, static_cast<CoreId>(src),
                            static_cast<CoreId>(dst), fn);
    }
};

/** XY dimension-order routing on the plain mesh. */
struct Mesh : EdgeAttachBase<Mesh>
{
    template <typename Fn>
    void
    walkCoreToCore(const arch::ArchConfig &cfg, CoreId src, CoreId dst,
                   Fn &&fn) const
    {
        int x = cfg.coreX(src);
        int y = cfg.coreY(src);
        const int tx = cfg.coreX(dst);
        const int ty = cfg.coreY(dst);
        while (x != tx) {
            const int nx = stepMesh(x, tx);
            fn(static_cast<NodeId>(cfg.coreAt(x, y)),
               static_cast<NodeId>(cfg.coreAt(nx, y)));
            x = nx;
        }
        while (y != ty) {
            const int ny = stepMesh(y, ty);
            fn(static_cast<NodeId>(cfg.coreAt(x, y)),
               static_cast<NodeId>(cfg.coreAt(x, ny)));
            y = ny;
        }
    }
};

/** Shortest-wrap dimension-order routing on the folded torus. */
struct FoldedTorus : EdgeAttachBase<FoldedTorus>
{
    template <typename Fn>
    void
    walkCoreToCore(const arch::ArchConfig &cfg, CoreId src, CoreId dst,
                   Fn &&fn) const
    {
        int x = cfg.coreX(src);
        int y = cfg.coreY(src);
        const int tx = cfg.coreX(dst);
        const int ty = cfg.coreY(dst);
        while (x != tx) {
            const int nx = stepRing(x, tx, cfg.xCores);
            fn(static_cast<NodeId>(cfg.coreAt(x, y)),
               static_cast<NodeId>(cfg.coreAt(nx, y)));
            x = nx;
        }
        while (y != ty) {
            const int ny = stepRing(y, ty, cfg.yCores);
            fn(static_cast<NodeId>(cfg.coreAt(x, y)),
               static_cast<NodeId>(cfg.coreAt(x, ny)));
            y = ny;
        }
    }
};

/**
 * Row-concentrated bidirectional ring: the cores of row y share the ring
 * stop at (0, y). Same-row traffic moves along the row; cross-row traffic
 * walks to the source row's stop, rides the ring (shortest direction, ties
 * increasing), and fans back out along the destination row. DRAM keeps the
 * edge-column attach, so west-DRAM flows inject directly at the stops.
 */
struct ConcentratedRing : EdgeAttachBase<ConcentratedRing>
{
    template <typename Fn>
    void
    walkCoreToCore(const arch::ArchConfig &cfg, CoreId src, CoreId dst,
                   Fn &&fn) const
    {
        int x = cfg.coreX(src);
        int y = cfg.coreY(src);
        const int tx = cfg.coreX(dst);
        const int ty = cfg.coreY(dst);
        if (y == ty) { // pure row traffic never touches the ring
            while (x != tx) {
                const int nx = stepMesh(x, tx);
                fn(static_cast<NodeId>(cfg.coreAt(x, y)),
                   static_cast<NodeId>(cfg.coreAt(nx, y)));
                x = nx;
            }
            return;
        }
        while (x != 0) { // to this row's ring stop
            const int nx = stepMesh(x, 0);
            fn(static_cast<NodeId>(cfg.coreAt(x, y)),
               static_cast<NodeId>(cfg.coreAt(nx, y)));
            x = nx;
        }
        while (y != ty) { // around the ring of row stops
            const int ny = stepRing(y, ty, cfg.yCores);
            fn(static_cast<NodeId>(cfg.coreAt(0, y)),
               static_cast<NodeId>(cfg.coreAt(0, ny)));
            y = ny;
        }
        while (x != tx) { // fan out along the destination row
            const int nx = stepMesh(x, tx);
            fn(static_cast<NodeId>(cfg.coreAt(x, y)),
               static_cast<NodeId>(cfg.coreAt(nx, y)));
            x = nx;
        }
    }
};

/**
 * SIAM-style two-level NoP+NoC hierarchy. Every chiplet owns a gateway
 * router at its local north-west core; cross-chiplet routes run XY inside
 * the source chiplet to its gateway, XY across the chiplet grid gateway to
 * gateway (each hop one NoP link, classified D2D), and XY inside the
 * destination chiplet. DRAM attaches to the gateway of the edge chiplet in
 * the endpoint's chiplet row. Monolithic configs fall back to the mesh.
 */
struct HierarchicalNop
{
    /** Gateway core of a chiplet (row-major chiplet index). */
    static CoreId
    gateway(const arch::ArchConfig &cfg, int chiplet)
    {
        const int cx = chiplet % cfg.xCut;
        const int cy = chiplet / cfg.xCut;
        return cfg.coreAt(cx * cfg.chipletCoresX(),
                          cy * cfg.chipletCoresY());
    }

    template <typename Fn>
    void
    walkHops(const arch::ArchConfig &cfg, NodeId src, NodeId dst,
             Fn &&fn) const
    {
        if (cfg.chipletCount() == 1) {
            Mesh{}.walkHops(cfg, src, dst, fn);
            return;
        }
        if (src == dst)
            return;
        if (isDramNode(cfg, src) && isDramNode(cfg, dst)) {
            GEMINI_PANIC("DRAM-to-DRAM routes are not meaningful");
        }
        if (isDramNode(cfg, src)) {
            const int dram = dramOf(cfg, src);
            const int cdst = cfg.chipletOf(static_cast<CoreId>(dst));
            const int entry_chip =
                (cdst / cfg.xCut) * cfg.xCut + dramEdgeCx(cfg, dram);
            fn(src, static_cast<NodeId>(gateway(cfg, entry_chip)));
            walkNop(cfg, entry_chip, cdst, fn);
            walkLocal(cfg, gateway(cfg, cdst), static_cast<CoreId>(dst),
                      fn);
            return;
        }
        if (isDramNode(cfg, dst)) {
            const int dram = dramOf(cfg, dst);
            const int csrc = cfg.chipletOf(static_cast<CoreId>(src));
            const int exit_chip =
                (csrc / cfg.xCut) * cfg.xCut + dramEdgeCx(cfg, dram);
            walkLocal(cfg, static_cast<CoreId>(src), gateway(cfg, csrc),
                      fn);
            walkNop(cfg, csrc, exit_chip, fn);
            fn(static_cast<NodeId>(gateway(cfg, exit_chip)), dst);
            return;
        }
        const int csrc = cfg.chipletOf(static_cast<CoreId>(src));
        const int cdst = cfg.chipletOf(static_cast<CoreId>(dst));
        if (csrc == cdst) {
            walkLocal(cfg, static_cast<CoreId>(src),
                      static_cast<CoreId>(dst), fn);
            return;
        }
        walkLocal(cfg, static_cast<CoreId>(src), gateway(cfg, csrc), fn);
        walkNop(cfg, csrc, cdst, fn);
        walkLocal(cfg, gateway(cfg, cdst), static_cast<CoreId>(dst), fn);
    }

  private:
    /** Chiplet-grid edge column of a DRAM (west even, east odd). */
    static int
    dramEdgeCx(const arch::ArchConfig &cfg, int dram)
    {
        return (dram % 2 == 0) ? 0 : cfg.xCut - 1;
    }

    /** XY walk between two cores of the same chiplet. */
    template <typename Fn>
    static void
    walkLocal(const arch::ArchConfig &cfg, CoreId src, CoreId dst, Fn &&fn)
    {
        Mesh{}.walkCoreToCore(cfg, src, dst, fn);
    }

    /** XY walk over the chiplet grid, one NoP link per chiplet hop. */
    template <typename Fn>
    static void
    walkNop(const arch::ArchConfig &cfg, int from_chip, int to_chip,
            Fn &&fn)
    {
        int cx = from_chip % cfg.xCut;
        int cy = from_chip / cfg.xCut;
        const int tx = to_chip % cfg.xCut;
        const int ty = to_chip / cfg.xCut;
        while (cx != tx) {
            const int nx = stepMesh(cx, tx);
            fn(static_cast<NodeId>(gateway(cfg, cy * cfg.xCut + cx)),
               static_cast<NodeId>(gateway(cfg, cy * cfg.xCut + nx)));
            cx = nx;
        }
        while (cy != ty) {
            const int ny = stepMesh(cy, ty);
            fn(static_cast<NodeId>(gateway(cfg, cy * cfg.xCut + cx)),
               static_cast<NodeId>(gateway(cfg, ny * cfg.xCut + cx)));
            cy = ny;
        }
    }
};

/** Closed set of topology backends (static dispatch, no virtual calls). */
using Backend =
    std::variant<Mesh, FoldedTorus, ConcentratedRing, HierarchicalNop>;

/** Backend instance for an architecture's topology knob. */
inline Backend
makeBackend(const arch::ArchConfig &cfg)
{
    switch (cfg.topology) {
      case arch::Topology::Mesh: return Mesh{};
      case arch::Topology::FoldedTorus: return FoldedTorus{};
      case arch::Topology::ConcentratedRing: return ConcentratedRing{};
      case arch::Topology::HierarchicalNop: return HierarchicalNop{};
    }
    GEMINI_PANIC("unknown topology");
}

} // namespace gemini::noc::topo

#endif // GEMINI_NOC_TOPOLOGIES_HH
