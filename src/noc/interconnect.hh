/**
 * @file
 * The interconnect seam of the evaluation stack: InterconnectModel owns the
 * dense route / link-classification / bandwidth tables every analysis query
 * reads, and builds them once at construction by statically dispatching
 * over the topology backends in src/noc/topologies.hh (mesh, folded torus,
 * concentrated ring, NoP+NoC hierarchy). The SA hot path only ever replays
 * precomputed route spans — no virtual calls, no per-hop dispatch, no
 * topology branches after construction.
 */

#ifndef GEMINI_NOC_INTERCONNECT_HH
#define GEMINI_NOC_INTERCONNECT_HH

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/common/logging.hh"
#include "src/common/types.hh"
#include "src/noc/traffic_map.hh"

namespace gemini::noc {

/** Classification of a directed link for bandwidth/energy purposes. */
enum class LinkKind
{
    OnChip, ///< regular fabric link inside one chiplet
    D2D,    ///< crosses a chiplet boundary (incl. IO-attach and NoP links)
};

/** Aggregate statistics of a traffic map over a given interconnect. */
struct TrafficStats
{
    double onChipBytes = 0.0;  ///< hop-weighted on-chip bytes
    double d2dBytes = 0.0;     ///< hop-weighted D2D bytes
    double maxLinkSeconds = 0.0; ///< bottleneck link serialization time
    LinkKey maxLink = 0;       ///< the bottleneck link
};

/**
 * Routing and geometry over one ArchConfig. Node ids: cores 0..N-1
 * (row-major), then DRAM pseudo-nodes N..N+D-1. DRAM attach points are a
 * backend concern (see topologies.hh); the paper's scheme puts DRAM d on
 * the west edge for even d and the east edge for odd d, with one port per
 * row (the "DRAM controller connected to multiple routers").
 */
class InterconnectModel
{
  public:
    explicit InterconnectModel(const arch::ArchConfig &cfg);

    const arch::ArchConfig &config() const { return cfg_; }

    NodeId coreNode(CoreId core) const { return core; }
    NodeId dramNode(int dram) const;
    bool isDramNode(NodeId n) const { return n >= cfg_.coreCount(); }
    int dramOf(NodeId n) const;

    /** Number of mesh + DRAM nodes. */
    int nodeCount() const { return cfg_.coreCount() + cfg_.dramCount; }

    /**
     * Walk the hops of the route src -> dst in order, replaying the
     * precomputed span through a statically-dispatched callback (no
     * std::function, no per-hop indirect call).
     */
    template <typename Fn>
    void
    forEachHop(NodeId src, NodeId dst, Fn &&fn) const
    {
        for (LinkKey key : route(src, dst))
            fn(linkFrom(key), linkTo(key));
    }

    /** Number of hops (links) on the route src -> dst. */
    int
    hopCount(NodeId src, NodeId dst) const
    {
        return static_cast<int>(route(src, dst).size());
    }

    /** Accumulate `bytes` on every link of the route. */
    void unicast(TrafficMap &map, NodeId src, NodeId dst,
                 double bytes) const;

    /**
     * Accumulate `bytes` on the union of the routes src -> each dst (a
     * dimension-order multicast tree: shared prefixes are charged once).
     */
    void multicast(TrafficMap &map, NodeId src,
                   const std::vector<NodeId> &dsts, double bytes) const;

    /** Flat (link, bytes) sink used by the traffic compiler. */
    using LinkSink = std::vector<std::pair<LinkKey, double>>;

    /** unicast into a flat sink (no hashing; duplicates merge later). */
    void
    unicastLinks(LinkSink &sink, NodeId src, NodeId dst, double bytes) const
    {
        if (bytes <= 0.0)
            return;
        for (LinkKey key : route(src, dst))
            sink.emplace_back(key, bytes);
    }

    /** multicast into a flat sink: the route union, each link once. */
    void multicastLinks(LinkSink &sink, NodeId src,
                        const std::vector<NodeId> &dsts, double bytes) const;

    /** Precomputed backend route src -> dst as packed link keys. */
    std::span<const LinkKey>
    route(NodeId src, NodeId dst) const
    {
        if (isDramNode(src) && isDramNode(dst) && src != dst) {
            GEMINI_PANIC("DRAM-to-DRAM routes are not meaningful");
        }
        const RouteRef &ref =
            routes_[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(nodeCount()) +
                    static_cast<std::size_t>(dst)];
        return {routeLinks_.data() + ref.offset, ref.length};
    }

    /** Kind of the directed link (a, b); a/b must be route neighbours. */
    LinkKind
    linkKind(NodeId a, NodeId b) const
    {
        return static_cast<LinkKind>(
            kindTable_[static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(nodeCount()) +
                       static_cast<std::size_t>(b)]);
    }

    /** Peak bandwidth of the directed link in bytes/second. */
    double
    linkBandwidthBps(NodeId a, NodeId b) const
    {
        return linkKind(a, b) == LinkKind::D2D ? d2dBps_ : nocBps_;
    }

    /**
     * Flat index of the directed link (a, b) in the dense nodeCount^2
     * tables — the slot space the delta-evaluated group state and the
     * dense merge scratch share.
     */
    std::size_t
    linkSlot(NodeId a, NodeId b) const
    {
        return static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(nodeCount()) +
               static_cast<std::size_t>(b);
    }

    /** linkKind by flat slot (same dense table, no div/mod round trip). */
    LinkKind
    linkKindAt(std::size_t slot) const
    {
        return static_cast<LinkKind>(kindTable_[slot]);
    }

    /** linkBandwidthBps by flat slot. */
    double
    linkBandwidthAt(std::size_t slot) const
    {
        return linkKindAt(slot) == LinkKind::D2D ? d2dBps_ : nocBps_;
    }

    /**
     * The two bandwidth constants behind linkBandwidthAt, for batched
     * (SIMD) seconds computation over packed kind bytes: every link's
     * bandwidth is one of exactly these two values.
     */
    double nocBandwidthBps() const { return nocBps_; }
    double d2dBandwidthBps() const { return d2dBps_; }

    /** Aggregate per-kind bytes and the bottleneck link time. */
    TrafficStats summarize(const TrafficMap &map) const;

    /** "(x,y)" or "DRAM#d" label for heatmap exports. */
    std::string nodeLabel(NodeId n) const;

  private:
    /** Uncached link classification (used to build the dense table). */
    LinkKind computeLinkKind(NodeId a, NodeId b) const;

    /** Fill routes_/routeLinks_ by walking every pair through `backend`. */
    template <typename Backend>
    void buildRoutes(const Backend &backend);

    arch::ArchConfig cfg_;

    /**
     * Dense per-(from, to) link classification, built once: summarize()
     * touches every link of every analysis, so the integer div/mod chain
     * behind computeLinkKind must not run per link per call.
     */
    std::vector<std::uint8_t> kindTable_;
    double nocBps_ = 0.0;
    double d2dBps_ = 0.0;

    /**
     * Dense route table: every (src, dst) pair's hop sequence, flattened
     * into one arena. Traffic accumulation replays these spans instead of
     * re-deriving routes hop by hop (the single hottest loop of the SA
     * mapper). DRAM-to-DRAM pairs, which have no meaningful route, hold
     * an empty span.
     */
    struct RouteRef
    {
        std::uint32_t offset = 0;
        std::uint32_t length = 0;
    };
    std::vector<RouteRef> routes_;
    std::vector<LinkKey> routeLinks_;
};

/** Historical name of the interconnect seam (the mesh-only era). */
using NocModel = InterconnectModel;

} // namespace gemini::noc

#endif // GEMINI_NOC_INTERCONNECT_HH
