#include "src/noc/interconnect.hh"

#include <algorithm>
#include <sstream>
#include <variant>

#include "src/common/logging.hh"
#include "src/noc/topologies.hh"

namespace gemini::noc {

template <typename Backend>
void
InterconnectModel::buildRoutes(const Backend &backend)
{
    const std::size_t n = static_cast<std::size_t>(nodeCount());
    routes_.resize(n * n);
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            RouteRef &ref = routes_[a * n + b];
            ref.offset = static_cast<std::uint32_t>(routeLinks_.size());
            if (isDramNode(static_cast<NodeId>(a)) &&
                isDramNode(static_cast<NodeId>(b)))
                continue; // no meaningful route; empty span
            backend.walkHops(cfg_, static_cast<NodeId>(a),
                             static_cast<NodeId>(b),
                             [this](NodeId from, NodeId to) {
                                 routeLinks_.push_back(makeLink(from, to));
                             });
            ref.length = static_cast<std::uint32_t>(routeLinks_.size()) -
                         ref.offset;
        }
    }
}

InterconnectModel::InterconnectModel(const arch::ArchConfig &cfg) : cfg_(cfg)
{
    const std::string err = cfg.validate();
    GEMINI_ASSERT(err.empty(), "invalid arch for InterconnectModel: ", err);

    const std::size_t n = static_cast<std::size_t>(nodeCount());
    kindTable_.resize(n * n);
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = 0; b < n; ++b)
            kindTable_[a * n + b] = static_cast<std::uint8_t>(
                computeLinkKind(static_cast<NodeId>(a),
                                static_cast<NodeId>(b)));
    nocBps_ = cfg_.nocBwGBps * 1.0e9;
    d2dBps_ = cfg_.d2dBwGBps * 1.0e9;

    // The only backend dispatch of the model's lifetime: build the dense
    // route arena once; every later query replays spans.
    std::visit([this](const auto &backend) { buildRoutes(backend); },
               topo::makeBackend(cfg_));
}

NodeId
InterconnectModel::dramNode(int dram) const
{
    GEMINI_ASSERT(dram >= 0 && dram < cfg_.dramCount, "bad dram id ", dram);
    return cfg_.coreCount() + dram;
}

int
InterconnectModel::dramOf(NodeId n) const
{
    GEMINI_ASSERT(isDramNode(n), "node ", n, " is not a DRAM node");
    return n - cfg_.coreCount();
}

namespace {

/**
 * Union of several routes' links, deduplicated through a generation-
 * stamped dense table (one stamp per flat link slot) instead of a
 * per-call sort or hash set: this is the hottest loop of the whole
 * mapping engine and route unions of a wide multicast reach hundreds of
 * links. Emission is in first-touch (dst-major, hop order) order; every
 * consumer either re-merges per link (order-insensitive sums) or folds
 * through the canonical sorted drain, so the union's emission order is
 * not numerically observable. The stamp table is thread-local so
 * concurrent SA chains never contend, and a generation bump makes reset
 * free.
 */
struct UnionScratch
{
    std::vector<std::uint32_t> stamp;
    std::uint32_t gen = 0;
};

template <typename RouteOf, typename Emit>
void
routeUnion(std::size_t node_count, const std::vector<NodeId> &dsts,
           const RouteOf &route_of, const Emit &emit)
{
    if (dsts.size() == 1) { // single destination: the route IS the union
        for (LinkKey key : route_of(dsts[0]))
            emit(key);
        return;
    }
    static thread_local UnionScratch scratch;
    const std::size_t slots = node_count * node_count;
    if (scratch.stamp.size() < slots) {
        scratch.stamp.assign(slots, 0);
        scratch.gen = 0;
    }
    if (++scratch.gen == 0) { // stamp wrap: start a fresh epoch
        std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
        scratch.gen = 1;
    }
    const std::uint32_t gen = scratch.gen;
    for (NodeId dst : dsts) {
        for (LinkKey key : route_of(dst)) {
            const std::size_t slot =
                static_cast<std::size_t>(linkFrom(key)) * node_count +
                static_cast<std::size_t>(linkTo(key));
            if (scratch.stamp[slot] != gen) {
                scratch.stamp[slot] = gen;
                emit(key);
            }
        }
    }
}

} // namespace

void
InterconnectModel::unicast(TrafficMap &map, NodeId src, NodeId dst,
                           double bytes) const
{
    if (bytes <= 0.0)
        return;
    for (LinkKey key : route(src, dst))
        map.addLink(key, bytes);
}

void
InterconnectModel::multicast(TrafficMap &map, NodeId src,
                             const std::vector<NodeId> &dsts,
                             double bytes) const
{
    if (bytes <= 0.0 || dsts.empty())
        return;
    // Union of the backend's unicast paths: shared prefixes (the trunk,
    // the DRAM injection link, the NoP gateway funnel) are charged exactly
    // once, which models a multicast-capable router tree.
    routeUnion(
        static_cast<std::size_t>(nodeCount()), dsts,
        [&](NodeId dst) { return route(src, dst); },
        [&](LinkKey key) { map.addLink(key, bytes); });
}

void
InterconnectModel::multicastLinks(LinkSink &sink, NodeId src,
                                  const std::vector<NodeId> &dsts,
                                  double bytes) const
{
    if (bytes <= 0.0 || dsts.empty())
        return;
    routeUnion(
        static_cast<std::size_t>(nodeCount()), dsts,
        [&](NodeId dst) { return route(src, dst); },
        [&](LinkKey key) { sink.emplace_back(key, bytes); });
}

LinkKind
InterconnectModel::computeLinkKind(NodeId a, NodeId b) const
{
    if (isDramNode(a) || isDramNode(b)) {
        // IO chiplets are separate dies, so their fabric attach links are
        // D2D on multi-chiplet designs; a monolithic chip integrates the
        // DRAM PHY on-die.
        return cfg_.chipletCount() > 1 ? LinkKind::D2D : LinkKind::OnChip;
    }
    return cfg_.crossesChiplet(static_cast<CoreId>(a),
                               static_cast<CoreId>(b))
               ? LinkKind::D2D
               : LinkKind::OnChip;
}

TrafficStats
InterconnectModel::summarize(const TrafficMap &map) const
{
    TrafficStats stats;
    for (const auto &[key, bytes] : map.links()) {
        const NodeId a = linkFrom(key);
        const NodeId b = linkTo(key);
        if (linkKind(a, b) == LinkKind::D2D)
            stats.d2dBytes += bytes;
        else
            stats.onChipBytes += bytes;
        const double secs = bytes / linkBandwidthBps(a, b);
        if (secs > stats.maxLinkSeconds) {
            stats.maxLinkSeconds = secs;
            stats.maxLink = key;
        }
    }
    return stats;
}

std::string
InterconnectModel::nodeLabel(NodeId n) const
{
    std::ostringstream oss;
    if (isDramNode(n)) {
        oss << "DRAM#" << dramOf(n) + 1;
    } else {
        oss << "(" << cfg_.coreX(static_cast<CoreId>(n)) << ","
            << cfg_.coreY(static_cast<CoreId>(n)) << ")";
    }
    return oss.str();
}

} // namespace gemini::noc
