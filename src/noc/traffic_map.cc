#include "src/noc/traffic_map.hh"

namespace gemini::noc {

double
TrafficMap::at(NodeId from, NodeId to) const
{
    auto it = links_.find(makeLink(from, to));
    return it == links_.end() ? 0.0 : it->second;
}

void
TrafficMap::scale(double factor)
{
    for (auto &kv : links_)
        kv.second *= factor;
}

void
TrafficMap::addFrom(const TrafficMap &other, double factor)
{
    for (const auto &kv : other.links_)
        links_[kv.first] += kv.second * factor;
}

double
TrafficMap::totalBytes() const
{
    double total = 0.0;
    for (const auto &kv : links_)
        total += kv.second;
    return total;
}

} // namespace gemini::noc
