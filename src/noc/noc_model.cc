#include "src/noc/noc_model.hh"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "src/common/logging.hh"

namespace gemini::noc {

NocModel::NocModel(const arch::ArchConfig &cfg) : cfg_(cfg)
{
    const std::string err = cfg.validate();
    GEMINI_ASSERT(err.empty(), "invalid arch for NocModel: ", err);
}

NodeId
NocModel::dramNode(int dram) const
{
    GEMINI_ASSERT(dram >= 0 && dram < cfg_.dramCount, "bad dram id ", dram);
    return cfg_.coreCount() + dram;
}

int
NocModel::dramOf(NodeId n) const
{
    GEMINI_ASSERT(isDramNode(n), "node ", n, " is not a DRAM node");
    return n - cfg_.coreCount();
}

int
NocModel::dramEdgeX(int dram) const
{
    // Even DRAMs on the west IO chiplet, odd on the east.
    return (dram % 2 == 0) ? 0 : cfg_.xCores - 1;
}

int
NocModel::stepToward(int from, int to, int extent) const
{
    if (from == to)
        return from;
    if (cfg_.topology == arch::Topology::Mesh) {
        return from + (to > from ? 1 : -1);
    }
    // Folded torus: move along the shorter ring direction; ties resolve to
    // the increasing direction for determinism.
    const int fwd = (to - from + extent) % extent;
    const int bwd = (from - to + extent) % extent;
    if (fwd <= bwd)
        return (from + 1) % extent;
    return (from - 1 + extent) % extent;
}

void
NocModel::walkCoreToCore(CoreId src, CoreId dst,
                         const std::function<void(NodeId, NodeId)> &fn) const
{
    // Dimension-order (X then Y) routing on both topologies.
    int x = cfg_.coreX(src);
    int y = cfg_.coreY(src);
    const int tx = cfg_.coreX(dst);
    const int ty = cfg_.coreY(dst);
    while (x != tx) {
        const int nx = stepToward(x, tx, cfg_.xCores);
        fn(cfg_.coreAt(x, y), cfg_.coreAt(nx, y));
        x = nx;
    }
    while (y != ty) {
        const int ny = stepToward(y, ty, cfg_.yCores);
        fn(cfg_.coreAt(x, y), cfg_.coreAt(x, ny));
        y = ny;
    }
}

void
NocModel::forEachHop(NodeId src, NodeId dst,
                     const std::function<void(NodeId, NodeId)> &fn) const
{
    if (src == dst)
        return;
    if (isDramNode(src) && isDramNode(dst)) {
        GEMINI_PANIC("DRAM-to-DRAM routes are not meaningful");
    }
    if (isDramNode(src)) {
        // Enter the mesh at the edge core on the destination's row, then
        // travel horizontally (the port sits on that row already).
        const int dram = dramOf(src);
        const CoreId entry =
            cfg_.coreAt(dramEdgeX(dram), cfg_.coreY(dst));
        fn(src, entry);
        walkCoreToCore(entry, static_cast<CoreId>(dst), fn);
        return;
    }
    if (isDramNode(dst)) {
        const int dram = dramOf(dst);
        const CoreId exit =
            cfg_.coreAt(dramEdgeX(dram), cfg_.coreY(src));
        walkCoreToCore(static_cast<CoreId>(src), exit, fn);
        fn(exit, dst);
        return;
    }
    walkCoreToCore(static_cast<CoreId>(src), static_cast<CoreId>(dst), fn);
}

int
NocModel::hopCount(NodeId src, NodeId dst) const
{
    int hops = 0;
    forEachHop(src, dst, [&hops](NodeId, NodeId) { ++hops; });
    return hops;
}

void
NocModel::unicast(TrafficMap &map, NodeId src, NodeId dst, double bytes) const
{
    if (bytes <= 0.0)
        return;
    forEachHop(src, dst,
               [&](NodeId a, NodeId b) { map.add(a, b, bytes); });
}

void
NocModel::multicast(TrafficMap &map, NodeId src,
                    const std::vector<NodeId> &dsts, double bytes) const
{
    if (bytes <= 0.0 || dsts.empty())
        return;
    // Union of the dimension-order unicast paths: shared prefixes (the
    // horizontal trunk, the DRAM injection link) are charged exactly once,
    // which models a multicast-capable router tree.
    std::unordered_set<LinkKey> seen;
    for (NodeId dst : dsts) {
        forEachHop(src, dst, [&](NodeId a, NodeId b) {
            if (seen.insert(makeLink(a, b)).second)
                map.add(a, b, bytes);
        });
    }
}

LinkKind
NocModel::linkKind(NodeId a, NodeId b) const
{
    if (isDramNode(a) || isDramNode(b)) {
        // IO chiplets are separate dies, so their mesh attach links are
        // D2D on multi-chiplet designs; a monolithic chip integrates the
        // DRAM PHY on-die.
        return cfg_.chipletCount() > 1 ? LinkKind::D2D : LinkKind::OnChip;
    }
    return cfg_.crossesChiplet(static_cast<CoreId>(a),
                               static_cast<CoreId>(b))
               ? LinkKind::D2D
               : LinkKind::OnChip;
}

double
NocModel::linkBandwidthBps(NodeId a, NodeId b) const
{
    const double gbps = linkKind(a, b) == LinkKind::D2D ? cfg_.d2dBwGBps
                                                        : cfg_.nocBwGBps;
    return gbps * 1.0e9;
}

TrafficStats
NocModel::summarize(const TrafficMap &map) const
{
    TrafficStats stats;
    for (const auto &[key, bytes] : map.links()) {
        const NodeId a = linkFrom(key);
        const NodeId b = linkTo(key);
        if (linkKind(a, b) == LinkKind::D2D)
            stats.d2dBytes += bytes;
        else
            stats.onChipBytes += bytes;
        const double secs = bytes / linkBandwidthBps(a, b);
        if (secs > stats.maxLinkSeconds) {
            stats.maxLinkSeconds = secs;
            stats.maxLink = key;
        }
    }
    return stats;
}

std::string
NocModel::nodeLabel(NodeId n) const
{
    std::ostringstream oss;
    if (isDramNode(n)) {
        oss << "DRAM#" << dramOf(n) + 1;
    } else {
        oss << "(" << cfg_.coreX(static_cast<CoreId>(n)) << ","
            << cfg_.coreY(static_cast<CoreId>(n)) << ")";
    }
    return oss.str();
}

} // namespace gemini::noc
