/**
 * @file
 * Per-link traffic accumulator. The LP SPM analyzer deposits the byte count
 * of every producer->consumer / DRAM flow here (per pipeline batch unit);
 * the evaluator then derives link times, energies and the Fig. 9 heatmap.
 */

#ifndef GEMINI_NOC_TRAFFIC_MAP_HH
#define GEMINI_NOC_TRAFFIC_MAP_HH

#include <cstdint>
#include <unordered_map>

namespace gemini::noc {

/** Node index: cores first (row-major), then DRAM pseudo-nodes. */
using NodeId = std::int32_t;

/** Directed link key packing (from, to). */
using LinkKey = std::uint64_t;

inline LinkKey
makeLink(NodeId from, NodeId to)
{
    return (static_cast<LinkKey>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
}

inline NodeId
linkFrom(LinkKey key)
{
    return static_cast<NodeId>(key >> 32);
}

inline NodeId
linkTo(LinkKey key)
{
    return static_cast<NodeId>(key & 0xFFFFFFFFu);
}

/**
 * Sparse map from directed link to accumulated bytes. Byte counts are
 * doubles: interleaved DRAM flows split volumes fractionally.
 */
class TrafficMap
{
  public:
    void
    add(NodeId from, NodeId to, double bytes)
    {
        if (bytes == 0.0)
            return;
        links_[makeLink(from, to)] += bytes;
    }

    /** Accumulate on an already-packed link key (fragment assembly). */
    void
    addLink(LinkKey key, double bytes)
    {
        if (bytes == 0.0)
            return;
        links_[key] += bytes;
    }

    /** Pre-size the hash table for an expected link count. */
    void reserve(std::size_t links) { links_.reserve(links); }

    /** Bytes accumulated on a link (0 when untouched). */
    double at(NodeId from, NodeId to) const;

    /** Multiply every link load (e.g. by pipeline unit count). */
    void scale(double factor);

    /** Element-wise accumulate another map into this one. */
    void addFrom(const TrafficMap &other, double factor = 1.0);

    void clear() { links_.clear(); }

    bool empty() const { return links_.empty(); }
    std::size_t linkCount() const { return links_.size(); }

    /** Sum of bytes over all links (i.e. hop-weighted traffic volume). */
    double totalBytes() const;

    const std::unordered_map<LinkKey, double> &links() const
    {
        return links_;
    }

  private:
    std::unordered_map<LinkKey, double> links_;
};

} // namespace gemini::noc

#endif // GEMINI_NOC_TRAFFIC_MAP_HH
