/**
 * @file
 * Topology, routing and link-classification model for the hardware
 * template's interconnect: XY routing on the mesh, shortest-wrap
 * dimension-order routing on the folded torus, multicast as the union of
 * unicast paths, and DRAM attach points on the west/east IO chiplets.
 */

#ifndef GEMINI_NOC_NOC_MODEL_HH
#define GEMINI_NOC_NOC_MODEL_HH

#include <functional>
#include <string>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/common/types.hh"
#include "src/noc/traffic_map.hh"

namespace gemini::noc {

/** Classification of a directed link for bandwidth/energy purposes. */
enum class LinkKind
{
    OnChip, ///< regular mesh link inside one chiplet
    D2D,    ///< crosses a chiplet boundary (incl. IO-chiplet attach links)
};

/** Aggregate statistics of a traffic map over a given NoC. */
struct TrafficStats
{
    double onChipBytes = 0.0;  ///< hop-weighted on-chip bytes
    double d2dBytes = 0.0;     ///< hop-weighted D2D bytes
    double maxLinkSeconds = 0.0; ///< bottleneck link serialization time
    LinkKey maxLink = 0;       ///< the bottleneck link
};

/**
 * Routing and geometry over one ArchConfig. Node ids: cores 0..N-1
 * (row-major), then DRAM pseudo-nodes N..N+D-1. DRAM d attaches on the
 * west edge for even d and the east edge for odd d, with one port per mesh
 * row (the paper's "DRAM controller connected to multiple routers").
 */
class NocModel
{
  public:
    explicit NocModel(const arch::ArchConfig &cfg);

    const arch::ArchConfig &config() const { return cfg_; }

    NodeId coreNode(CoreId core) const { return core; }
    NodeId dramNode(int dram) const;
    bool isDramNode(NodeId n) const { return n >= cfg_.coreCount(); }
    int dramOf(NodeId n) const;

    /** Number of mesh + DRAM nodes. */
    int nodeCount() const { return cfg_.coreCount() + cfg_.dramCount; }

    /**
     * Walk the hops of the route src -> dst in order. DRAM endpoints enter
     * and leave the mesh at the edge core on the destination's (resp.
     * source's) row.
     */
    void forEachHop(NodeId src, NodeId dst,
                    const std::function<void(NodeId, NodeId)> &fn) const;

    /** Number of hops (links) on the route src -> dst. */
    int hopCount(NodeId src, NodeId dst) const;

    /** Accumulate `bytes` on every link of the route. */
    void unicast(TrafficMap &map, NodeId src, NodeId dst,
                 double bytes) const;

    /**
     * Accumulate `bytes` on the union of the routes src -> each dst (an
     * XY multicast tree on the mesh: shared prefixes are charged once).
     */
    void multicast(TrafficMap &map, NodeId src,
                   const std::vector<NodeId> &dsts, double bytes) const;

    /** Kind of the directed link (a, b); a/b must be route neighbours. */
    LinkKind linkKind(NodeId a, NodeId b) const;

    /** Peak bandwidth of the directed link in bytes/second. */
    double linkBandwidthBps(NodeId a, NodeId b) const;

    /** Aggregate per-kind bytes and the bottleneck link time. */
    TrafficStats summarize(const TrafficMap &map) const;

    /** "(x,y)" or "DRAM#d" label for heatmap exports. */
    std::string nodeLabel(NodeId n) const;

  private:
    /** Edge column (0 or xCores-1) where a DRAM's ports sit. */
    int dramEdgeX(int dram) const;

    /** Step coordinate one hop toward `to` (mesh or shortest-wrap). */
    int stepToward(int from, int to, int extent) const;

    void walkCoreToCore(CoreId src, CoreId dst,
                        const std::function<void(NodeId, NodeId)> &fn) const;

    arch::ArchConfig cfg_;
};

} // namespace gemini::noc

#endif // GEMINI_NOC_NOC_MODEL_HH
