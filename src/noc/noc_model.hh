/**
 * @file
 * Topology, routing and link-classification model for the hardware
 * template's interconnect: XY routing on the mesh, shortest-wrap
 * dimension-order routing on the folded torus, multicast as the union of
 * unicast paths, and DRAM attach points on the west/east IO chiplets.
 */

#ifndef GEMINI_NOC_NOC_MODEL_HH
#define GEMINI_NOC_NOC_MODEL_HH

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/common/logging.hh"
#include "src/common/types.hh"
#include "src/noc/traffic_map.hh"

namespace gemini::noc {

/** Classification of a directed link for bandwidth/energy purposes. */
enum class LinkKind
{
    OnChip, ///< regular mesh link inside one chiplet
    D2D,    ///< crosses a chiplet boundary (incl. IO-chiplet attach links)
};

/** Aggregate statistics of a traffic map over a given NoC. */
struct TrafficStats
{
    double onChipBytes = 0.0;  ///< hop-weighted on-chip bytes
    double d2dBytes = 0.0;     ///< hop-weighted D2D bytes
    double maxLinkSeconds = 0.0; ///< bottleneck link serialization time
    LinkKey maxLink = 0;       ///< the bottleneck link
};

/**
 * Routing and geometry over one ArchConfig. Node ids: cores 0..N-1
 * (row-major), then DRAM pseudo-nodes N..N+D-1. DRAM d attaches on the
 * west edge for even d and the east edge for odd d, with one port per mesh
 * row (the paper's "DRAM controller connected to multiple routers").
 */
class NocModel
{
  public:
    explicit NocModel(const arch::ArchConfig &cfg);

    const arch::ArchConfig &config() const { return cfg_; }

    NodeId coreNode(CoreId core) const { return core; }
    NodeId dramNode(int dram) const;
    bool isDramNode(NodeId n) const { return n >= cfg_.coreCount(); }
    int dramOf(NodeId n) const;

    /** Number of mesh + DRAM nodes. */
    int nodeCount() const { return cfg_.coreCount() + cfg_.dramCount; }

    /**
     * Walk the hops of the route src -> dst in order. DRAM endpoints enter
     * and leave the mesh at the edge core on the destination's (resp.
     * source's) row.
     */
    void forEachHop(NodeId src, NodeId dst,
                    const std::function<void(NodeId, NodeId)> &fn) const;

    /** Number of hops (links) on the route src -> dst. */
    int hopCount(NodeId src, NodeId dst) const;

    /** Accumulate `bytes` on every link of the route. */
    void unicast(TrafficMap &map, NodeId src, NodeId dst,
                 double bytes) const;

    /**
     * Accumulate `bytes` on the union of the routes src -> each dst (an
     * XY multicast tree on the mesh: shared prefixes are charged once).
     */
    void multicast(TrafficMap &map, NodeId src,
                   const std::vector<NodeId> &dsts, double bytes) const;

    /** Flat (link, bytes) sink used by the analyzer's fragment builder. */
    using LinkSink = std::vector<std::pair<LinkKey, double>>;

    /** unicast into a flat sink (no hashing; duplicates merge later). */
    void
    unicastLinks(LinkSink &sink, NodeId src, NodeId dst, double bytes) const
    {
        if (bytes <= 0.0)
            return;
        for (LinkKey key : route(src, dst))
            sink.emplace_back(key, bytes);
    }

    /** multicast into a flat sink: the route union, each link once. */
    void multicastLinks(LinkSink &sink, NodeId src,
                        const std::vector<NodeId> &dsts, double bytes) const;

    /** Precomputed dimension-order route src -> dst as packed link keys. */
    std::span<const LinkKey>
    route(NodeId src, NodeId dst) const
    {
        if (isDramNode(src) && isDramNode(dst) && src != dst) {
            GEMINI_PANIC("DRAM-to-DRAM routes are not meaningful");
        }
        const RouteRef &ref =
            routes_[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(nodeCount()) +
                    static_cast<std::size_t>(dst)];
        return {routeLinks_.data() + ref.offset, ref.length};
    }

    /** Kind of the directed link (a, b); a/b must be route neighbours. */
    LinkKind
    linkKind(NodeId a, NodeId b) const
    {
        return static_cast<LinkKind>(
            kindTable_[static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(nodeCount()) +
                       static_cast<std::size_t>(b)]);
    }

    /** Peak bandwidth of the directed link in bytes/second. */
    double
    linkBandwidthBps(NodeId a, NodeId b) const
    {
        return linkKind(a, b) == LinkKind::D2D ? d2dBps_ : nocBps_;
    }

    /** Aggregate per-kind bytes and the bottleneck link time. */
    TrafficStats summarize(const TrafficMap &map) const;

    /** "(x,y)" or "DRAM#d" label for heatmap exports. */
    std::string nodeLabel(NodeId n) const;

  private:
    /** Uncached link classification (used to build the dense table). */
    LinkKind computeLinkKind(NodeId a, NodeId b) const;

    /** Edge column (0 or xCores-1) where a DRAM's ports sit. */
    int dramEdgeX(int dram) const;

    /** Step coordinate one hop toward `to` (mesh or shortest-wrap). */
    int stepToward(int from, int to, int extent) const;

    /**
     * Statically-dispatched hop walkers: the SA hot path visits millions
     * of hops per second, so the std::function-based public API delegates
     * here and the traffic-accumulation loops in this class call these
     * directly (no type-erased call per hop).
     */
    template <typename Fn>
    void
    walkCoreToCoreT(CoreId src, CoreId dst, Fn &&fn) const
    {
        int x = cfg_.coreX(src);
        int y = cfg_.coreY(src);
        const int tx = cfg_.coreX(dst);
        const int ty = cfg_.coreY(dst);
        while (x != tx) {
            const int nx = stepToward(x, tx, cfg_.xCores);
            fn(cfg_.coreAt(x, y), cfg_.coreAt(nx, y));
            x = nx;
        }
        while (y != ty) {
            const int ny = stepToward(y, ty, cfg_.yCores);
            fn(cfg_.coreAt(x, y), cfg_.coreAt(x, ny));
            y = ny;
        }
    }

    template <typename Fn>
    void
    forEachHopT(NodeId src, NodeId dst, Fn &&fn) const
    {
        if (src == dst)
            return;
        if (isDramNode(src) && isDramNode(dst)) {
            GEMINI_PANIC("DRAM-to-DRAM routes are not meaningful");
        }
        if (isDramNode(src)) {
            const int dram = dramOf(src);
            const CoreId entry =
                cfg_.coreAt(dramEdgeX(dram), cfg_.coreY(dst));
            fn(src, entry);
            walkCoreToCoreT(entry, static_cast<CoreId>(dst), fn);
            return;
        }
        if (isDramNode(dst)) {
            const int dram = dramOf(dst);
            const CoreId exit =
                cfg_.coreAt(dramEdgeX(dram), cfg_.coreY(src));
            walkCoreToCoreT(static_cast<CoreId>(src), exit, fn);
            fn(exit, dst);
            return;
        }
        walkCoreToCoreT(static_cast<CoreId>(src),
                        static_cast<CoreId>(dst), fn);
    }

    arch::ArchConfig cfg_;

    /**
     * Dense per-(from, to) link classification, built once: summarize()
     * touches every link of every analysis, so the integer div/mod chain
     * behind computeLinkKind must not run per link per call.
     */
    std::vector<std::uint8_t> kindTable_;
    double nocBps_ = 0.0;
    double d2dBps_ = 0.0;

    /**
     * Dense route table: every (src, dst) pair's hop sequence, flattened
     * into one arena. Traffic accumulation replays these spans instead of
     * re-deriving routes hop by hop (the single hottest loop of the SA
     * mapper). DRAM-to-DRAM pairs, which have no meaningful route, hold
     * an empty span.
     */
    struct RouteRef
    {
        std::uint32_t offset = 0;
        std::uint32_t length = 0;
    };
    std::vector<RouteRef> routes_;
    std::vector<LinkKey> routeLinks_;
};

} // namespace gemini::noc

#endif // GEMINI_NOC_NOC_MODEL_HH
