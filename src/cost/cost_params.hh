/**
 * @file
 * Constants of the Monetary Cost Evaluator (Sec. V-C). The paper publishes
 * the formulas and several constants (yield 0.9 per 40 mm^2 unit at 12 nm,
 * GDDR6 $3.5 per 32 GB/s die, 0.005 $/mm^2 fan-out substrate, tiered
 * high-density substrate pricing, the empirical substrate scaling factor);
 * the area coefficients are calibrated so the published qualitative facts
 * hold (S-Arch spends ~40% of computing-chiplet area on D2D interfaces —
 * Sec. VI-B1).
 */

#ifndef GEMINI_COST_COST_PARAMS_HH
#define GEMINI_COST_COST_PARAMS_HH

#include <vector>

namespace gemini::cost {

/** One pricing tier of the high-density organic substrate. */
struct SubstrateTier
{
    double maxAreaMm2;       ///< tier applies below this substrate area
    double dollarPerMm2;
};

struct CostParams
{
    // ---- silicon ----

    /** 12 nm good-wafer cost amortized per mm^2 (pre-yield). */
    double siliconDollarPerMm2 = 0.12;

    /** Yield of one unit area (the paper: 0.9 at 12 nm). */
    double yieldUnit = 0.9;

    /** Unit area of the yield model (the paper: 40 mm^2). */
    double unitAreaMm2 = 40.0;

    // ---- area model (12 nm) ----

    /** PE-array area per 8-bit MAC (1024 MACs ~= 0.51 mm^2). */
    double macAreaMm2 = 0.0005;

    /** SRAM macro area per MiB of GLB. */
    double glbAreaMm2PerMiB = 1.3;

    /** Router + DMA + control overhead per core. */
    double coreFixedAreaMm2 = 0.15;

    /** D2D PHY+controller area: base + bandwidth-proportional part. */
    double d2dAreaBaseMm2 = 0.05;
    double d2dAreaPerGBps = 0.025;

    /** IO chiplet: fixed controller area + DRAM PHY per GB/s. */
    double ioChipletFixedMm2 = 8.0;
    double ioPhyAreaPerGBps = 0.03;

    // ---- DRAM ----

    /** Bandwidth of one DRAM die (GDDR6: 32 GB/s). */
    double dramUnitBwGBps = 32.0;

    /** Price of one DRAM die (the paper: $3.5). */
    double dramDiePrice = 3.5;

    // ---- packaging ----

    /** Substrate area = total silicon area x this empirical factor. */
    double substrateScale = 4.0;

    /** Assembly/bonding yield per die placed on the substrate. */
    double packageYieldPerDie = 0.99;

    /** Fan-out substrate $/mm^2 for monolithic chips (the paper: 0.005). */
    double monolithicSubstrateDollarPerMm2 = 0.005;

    /**
     * Tiered $/mm^2 of the high-density organic substrate needed once
     * chiplets are used; larger substrates need more layers.
     */
    std::vector<SubstrateTier> chipletSubstrateTiers{
        {1000.0, 0.010},
        {2000.0, 0.015},
        {4000.0, 0.020},
        {1e18, 0.030},
    };
};

} // namespace gemini::cost

#endif // GEMINI_COST_COST_PARAMS_HH
