#include "src/cost/cost_stack.hh"

#include <algorithm>
#include <cmath>

namespace gemini::cost {

CostStack::CostStack(const arch::ArchConfig &cfg,
                     const arch::TechParams &tech, CostParams mc_params)
    : energy_(cfg, tech), mc_(std::move(mc_params))
{
    if (cfg.topology == arch::Topology::HierarchicalNop)
        nopSerJPerByte_ = tech.nopSerializationJPerByte;
}

void
CostStack::saContribution(const eval::EvalBreakdown &g, double &energy,
                          double &delay)
{
    const double penalty = (1.0 + g.glbOverflow) * (1.0 + g.glbOverflow);
    energy = g.totalEnergy() * penalty;
    delay = g.delay * penalty;
}

double
CostStack::saScalar(double energy, double delay, double beta, double gamma)
{
    return std::pow(energy, beta) * std::pow(delay, gamma);
}

double
CostStack::saCost(const std::vector<eval::EvalBreakdown> &groups,
                  double beta, double gamma)
{
    double energy = 0.0;
    double delay = 0.0;
    for (const auto &g : groups) {
        double e, d;
        saContribution(g, e, d);
        energy += e;
        delay += d;
    }
    return saScalar(energy, delay, beta, gamma);
}

double
CostStack::dseObjective(double mc_total, double energy_geo,
                        double delay_geo, double alpha, double beta,
                        double gamma)
{
    return std::pow(mc_total, alpha) * std::pow(energy_geo, beta) *
           std::pow(delay_geo, gamma);
}

double
CostStack::dseObjectiveLowerBound(
    const std::vector<const dnn::Graph *> &models, std::int64_t batch,
    double mc_total, double alpha, double beta, double gamma) const
{
    if (alpha < 0.0 || beta < 0.0 || gamma < 0.0)
        return 0.0; // bound only monotone for non-negative exponents
    const arch::ArchConfig &cfg = config();
    const arch::TechParams &tech = energy_.tech();
    const double b = static_cast<double>(batch);
    const double peak_macs_per_sec = static_cast<double>(cfg.coreCount()) *
                                     cfg.macsPerCore * cfg.freqGHz * 1e9;
    const double dram_bps = cfg.dramBwGBps * 1e9;

    double log_delay = 0.0;
    double log_energy = 0.0;
    for (const dnn::Graph *g : models) {
        const double macs = static_cast<double>(g->totalMacs()) * b;
        double out_volume = 0.0;
        for (const dnn::Layer &l : g->layers())
            if (l.isOutput)
                out_volume += static_cast<double>(l.ofmapVolume());
        const double dram_bytes =
            static_cast<double>(g->totalWeightBytes()) + b * out_volume;
        const double delay_lb =
            std::max(macs / peak_macs_per_sec, dram_bytes / dram_bps);
        const double energy_lb =
            macs * tech.macJ + dram_bytes * tech.dramJPerByte;
        log_delay += std::log(std::max(delay_lb, 1e-300));
        log_energy += std::log(std::max(energy_lb, 1e-300));
    }
    const double n = static_cast<double>(models.size());
    const double delay_geo = std::exp(log_delay / n);
    const double energy_geo = std::exp(log_energy / n);
    return 0.999 *
           dseObjective(mc_total, energy_geo, delay_geo, alpha, beta,
                        gamma);
}

} // namespace gemini::cost
