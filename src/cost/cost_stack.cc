#include "src/cost/cost_stack.hh"

#include <algorithm>
#include <cmath>

namespace gemini::cost {

CostStack::CostStack(const arch::ArchConfig &cfg,
                     const arch::TechParams &tech, CostParams mc_params)
    : energy_(cfg, tech), mc_(std::move(mc_params))
{
    if (cfg.topology == arch::Topology::HierarchicalNop)
        nopSerJPerByte_ = tech.nopSerializationJPerByte;
}

void
CostStack::saContribution(const eval::EvalBreakdown &g, double &energy,
                          double &delay)
{
    const double penalty = (1.0 + g.glbOverflow) * (1.0 + g.glbOverflow);
    energy = g.totalEnergy() * penalty;
    delay = g.delay * penalty;
}

double
CostStack::saScalar(double energy, double delay, double beta, double gamma)
{
    return std::pow(energy, beta) * std::pow(delay, gamma);
}

double
CostStack::saCost(const std::vector<eval::EvalBreakdown> &groups,
                  double beta, double gamma)
{
    double energy = 0.0;
    double delay = 0.0;
    for (const auto &g : groups) {
        double e, d;
        saContribution(g, e, d);
        energy += e;
        delay += d;
    }
    return saScalar(energy, delay, beta, gamma);
}

double
CostStack::dseObjective(double mc_total, double energy_geo,
                        double delay_geo, double alpha, double beta,
                        double gamma)
{
    return std::pow(mc_total, alpha) * std::pow(energy_geo, beta) *
           std::pow(delay_geo, gamma);
}

double
CostStack::dseObjectiveLowerBound(
    const std::vector<const dnn::Graph *> &models, std::int64_t batch,
    double mc_total, double alpha, double beta, double gamma,
    int maxGroupLayers, BoundComponents *components) const
{
    if (alpha < 0.0 || beta < 0.0 || gamma < 0.0)
        return 0.0; // bound only monotone for non-negative exponents
    const AnalyticBoundResult lb = analyticLowerBound(
        config(), energy_.tech(), models, batch, maxGroupLayers);
    if (components != nullptr)
        *components = lb.components;
    return kBoundSlack * dseObjective(mc_total, lb.energyGeoJoules,
                                      lb.delayGeoSeconds, alpha, beta,
                                      gamma);
}

} // namespace gemini::cost
