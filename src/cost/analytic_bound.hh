/**
 * @file
 * Closed-form analytical lower bound on the achievable delay/energy of any
 * mapping of a model onto one architecture candidate (the screen-rung
 * prune oracle). Replaces the single whole-model peak-MACs/DRAM roofline
 * with a per-layer model folded over every feasible contiguous layer-group
 * segmentation by dynamic programming: per segment the bound takes the max
 * of a compute roofline (every MAC/vector-op must execute on the disjoint
 * core groups), a DRAM roofline over the segment's *compulsory* DRAM bytes
 * (weights once, cross-segment and external activations at their exact
 * touched-element floor, forced ofmap stores), and a NoC ingress roofline
 * (every DRAM byte crosses a DRAM-adjacent link of the candidate's
 * topology). See DESIGN.md "Analytical bounds and seeding" for the
 * per-term soundness obligations.
 */

#ifndef GEMINI_COST_ANALYTIC_BOUND_HH
#define GEMINI_COST_ANALYTIC_BOUND_HH

#include <cstdint>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/arch/tech_params.hh"
#include "src/dnn/graph.hh"

namespace gemini::cost {

/**
 * Explanatory decomposition of the bound (geomean across models): which
 * floor is binding tells *why* a candidate was pruned. `refetchBytes` is
 * the DRAM traffic the bound proves on top of the naive compulsory set
 * (weights + network outputs) — the GLB-capacity/segmentation-forced
 * refetch floor.
 */
struct BoundComponents
{
    double computeSeconds = 0.0; ///< whole-model compute roofline
    double dramSeconds = 0.0;    ///< bound bytes / aggregate DRAM BW
    double nocSeconds = 0.0;     ///< bound bytes / DRAM-adjacent link cut
    double refetchBytes = 0.0;   ///< bound bytes above weights + outputs
};

/** Per-model-geomean delay/energy floors plus their decomposition. */
struct AnalyticBoundResult
{
    double delayGeoSeconds = 0.0;
    double energyGeoJoules = 0.0;
    BoundComponents components;
};

/**
 * Compute the analytical delay/energy lower bound of `models` on `cfg`.
 *
 * @param maxGroupLayers  the mapping engine's DP segment-length cap; any
 *        achievable grouping is a contiguous segmentation with segments of
 *        at most min(maxGroupLayers, coreCount) layers, which the bound's
 *        DP minimizes over.
 *
 * Guaranteed <= the delay/energy of every mapping the engine can emit on
 * any of the four topology backends (tests/test_analytic.cc property
 * test). Pure function of (cfg, tech, models, batch, maxGroupLayers);
 * workload geometry only — no search.
 */
AnalyticBoundResult
analyticLowerBound(const arch::ArchConfig &cfg,
                   const arch::TechParams &tech,
                   const std::vector<const dnn::Graph *> &models,
                   std::int64_t batch, int maxGroupLayers);

/**
 * Exact element count of the producer-ofmap region any consumer must read
 * for `layer`'s full output (per batch sample): the union of per-output
 * required inputs, computed axis-separably (channel extent x swept
 * per-row height intervals x swept per-column width intervals), clamped
 * to the producer shape. Strided kernels leave holes *between* request
 * boxes but never inside a single row/column projection, so this is a
 * sound floor on the coalesced DRAM requests the traffic compiler emits
 * (exposed for the soundness tests).
 */
double touchedInputVolume(const dnn::Graph &graph, LayerId layer,
                          std::size_t input_idx);

} // namespace gemini::cost

#endif // GEMINI_COST_ANALYTIC_BOUND_HH
