/**
 * @file
 * The Monetary Cost Evaluator (Sec. V-C): chiplet silicon cost with
 * area-dependent yield, DRAM die cost, and packaging/substrate cost. MC
 * depends only on the architecture parameters, never on the workload.
 */

#ifndef GEMINI_COST_MC_EVALUATOR_HH
#define GEMINI_COST_MC_EVALUATOR_HH

#include <string>

#include "src/arch/arch_config.hh"
#include "src/common/types.hh"
#include "src/cost/cost_params.hh"

namespace gemini::cost {

/** Full MC breakdown of one architecture (the Fig. 5/8 categories). */
struct CostBreakdown
{
    Dollars computeSilicon = 0.0; ///< computing chiplets (yield-adjusted)
    Dollars ioSilicon = 0.0;      ///< IO chiplets (zero when monolithic)
    Dollars dram = 0.0;
    Dollars package = 0.0;        ///< substrate + assembly yield

    // Area diagnostics (Fig. 8(a) reports yield and total area).
    double computeDieAreaMm2 = 0.0; ///< one computing chiplet
    double totalSiliconAreaMm2 = 0.0;
    double computeDieYield = 1.0;
    double d2dAreaFraction = 0.0;   ///< D2D share of one computing chiplet

    Dollars
    total() const
    {
        return computeSilicon + ioSilicon + dram + package;
    }

    /** "Chiplet manufacturing" in the paper's MC breakdown figures. */
    Dollars silicon() const { return computeSilicon + ioSilicon; }
};

/**
 * Evaluates the production cost of an architecture candidate.
 */
class McEvaluator
{
  public:
    explicit McEvaluator(CostParams params = {});

    const CostParams &params() const { return params_; }

    /** Logic + SRAM area of one computing core. */
    double coreAreaMm2(int macs_per_core, int glb_kib) const;

    /** Area of one D2D interface at the given per-link bandwidth. */
    double d2dAreaMm2(double d2d_bw_gbps) const;

    /** Die yield under the paper's Y_unit^(A/A_unit) model. */
    double dieYield(double area_mm2) const;

    /** Yield-adjusted silicon dollars for one die of the given area. */
    Dollars siliconDollars(double area_mm2) const;

    /** Full MC evaluation of an architecture. */
    CostBreakdown evaluate(const arch::ArchConfig &cfg) const;

    /** One-line summary for reports. */
    static std::string describe(const CostBreakdown &bd);

  private:
    CostParams params_;
};

} // namespace gemini::cost

#endif // GEMINI_COST_MC_EVALUATOR_HH
