/**
 * @file
 * The layered cost stack: one object that owns every cost model of the
 * co-exploration loop — unit energies (eval::EnergyModel), monetary cost
 * (cost::McEvaluator) and the scalar objectives built on top of both (the
 * SA mapping objective of Sec. V-A and the DSE objective
 * MC^alpha * E^beta * D^gamma with its workload-independent lower bound).
 *
 * Both the SA inner loop and the DSE driver price through this class, so a
 * new cost term — e.g. the per-topology NoP serialization energy of the
 * hierarchical backend — is added in exactly one place and is immediately
 * consistent between the mapping objective, the reported breakdowns and
 * the DSE pruning bound.
 */

#ifndef GEMINI_COST_COST_STACK_HH
#define GEMINI_COST_COST_STACK_HH

#include <cstdint>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/arch/tech_params.hh"
#include "src/cost/analytic_bound.hh"
#include "src/cost/mc_evaluator.hh"
#include "src/dnn/graph.hh"
#include "src/eval/breakdown.hh"
#include "src/eval/energy_model.hh"

namespace gemini::cost {

/**
 * Slack applied to the DSE objective lower bound before it is compared
 * against achieved objectives. Every term of the analytical bound is a
 * true mathematical floor, but the achieved side is assembled by long FP
 * folds (per-link seconds, per-group energy sums, log-space geomeans)
 * whose rounding depends on summation order, while the bound's own
 * shorter folds round differently: two exact real numbers within a few
 * ULPs of each other can land on either side after ~1e3-element folds
 * (relative error up to ~n * eps ~ 1e3 * 2^-52 ~ 2e-13, plus pow/exp
 * library slop). 0.1% headroom is ~9 orders of magnitude above that
 * worst case, cheap (it weakens the prune threshold negligibly), and
 * keeps the prune provably on the safe side of FP noise. The slack band
 * is asserted empty in tests/test_dse.cc (no evaluated record may score
 * inside [bound, bound / kBoundSlack)).
 */
inline constexpr double kBoundSlack = 0.999;

class CostStack
{
  public:
    explicit CostStack(const arch::ArchConfig &cfg,
                       const arch::TechParams &tech = {},
                       CostParams mc_params = {});

    const arch::ArchConfig &config() const { return energy_.config(); }
    const eval::EnergyModel &energy() const { return energy_; }
    const McEvaluator &mc() const { return mc_; }

    // ---- Layer 1: unit energies / timings (per-topology terms here) ----

    /** Energy of hop-weighted on-chip traffic. */
    Joules onChipJ(double bytes) const { return energy_.onChipJ(bytes); }

    /**
     * Energy of hop-weighted D2D traffic. Under the hierarchical NoP+NoC
     * topology the D2D links are the NoP gateway links, which pay the
     * additional serialization energy on top of the GRS channel.
     */
    Joules
    d2dJ(double bytes) const
    {
        return energy_.d2dJ(bytes) + nopSerJPerByte_ * bytes;
    }

    /** Energy of DRAM accesses. */
    Joules dramJ(double bytes) const { return energy_.dramJ(bytes); }

    /** Per-DRAM-stack bandwidth in bytes/second. */
    double dramStackBps() const { return energy_.dramStackBps(); }

    // ---- Layer 2: monetary cost ----

    /** Full MC evaluation of the bound architecture (computed on demand;
     * MC depends only on the architecture, never on the workload). */
    CostBreakdown mcBreakdown() const { return mc_.evaluate(config()); }

    // ---- Layer 3: scalar objectives ----

    /**
     * GLB-overflow-penalized SA mapping objective over per-group
     * breakdowns: (sum_g E_g p_g)^beta * (sum_g D_g p_g)^gamma with
     * p_g = (1 + overflow_g)^2 (Sec. V-A with the repo's soft feasibility
     * penalty).
     */
    static double saCost(const std::vector<eval::EvalBreakdown> &groups,
                         double beta, double gamma);

    /**
     * Penalized contribution of one group to the SA cost's E and D sums
     * (the incremental accumulator of the SA hot path re-derives only the
     * touched groups' contributions).
     */
    static void saContribution(const eval::EvalBreakdown &g, double &energy,
                               double &delay);

    /** Scalar SA cost from accumulated contribution sums. */
    static double saScalar(double energy, double delay, double beta,
                           double gamma);

    /** The DSE objective MC^alpha * E^beta * D^gamma. */
    static double dseObjective(double mc_total, double energy_geo,
                               double delay_geo, double alpha, double beta,
                               double gamma);

    /**
     * Workload-independent DSE objective lower bound of the bound
     * architecture. MC is exact; the delay/energy floors come from
     * cost::analyticLowerBound — a per-layer compute/DRAM/NoC model
     * folded over every feasible contiguous layer-group segmentation by
     * dynamic programming (provably <= every achievable evaluation on
     * all topology backends; see analytic_bound.hh and DESIGN.md
     * "Analytical bounds and seeding"). `maxGroupLayers` is the mapping
     * engine's segment-length cap; <= 0 falls back to the pre-analytical
     * whole-model roofline. `components`, when non-null, receives the
     * explanatory decomposition recorded per DseRecord. The result is
     * scaled by kBoundSlack (FP fold-order headroom). Returns 0 (trivial
     * bound) for negative exponents, where the bound is not monotone.
     */
    double dseObjectiveLowerBound(
        const std::vector<const dnn::Graph *> &models, std::int64_t batch,
        double mc_total, double alpha, double beta, double gamma,
        int maxGroupLayers = 12,
        BoundComponents *components = nullptr) const;

  private:
    eval::EnergyModel energy_;
    McEvaluator mc_;
    double nopSerJPerByte_ = 0.0; ///< nonzero only for HierarchicalNop
};

} // namespace gemini::cost

#endif // GEMINI_COST_COST_STACK_HH
