/**
 * @file
 * The layered cost stack: one object that owns every cost model of the
 * co-exploration loop — unit energies (eval::EnergyModel), monetary cost
 * (cost::McEvaluator) and the scalar objectives built on top of both (the
 * SA mapping objective of Sec. V-A and the DSE objective
 * MC^alpha * E^beta * D^gamma with its workload-independent lower bound).
 *
 * Both the SA inner loop and the DSE driver price through this class, so a
 * new cost term — e.g. the per-topology NoP serialization energy of the
 * hierarchical backend — is added in exactly one place and is immediately
 * consistent between the mapping objective, the reported breakdowns and
 * the DSE pruning bound.
 */

#ifndef GEMINI_COST_COST_STACK_HH
#define GEMINI_COST_COST_STACK_HH

#include <cstdint>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/arch/tech_params.hh"
#include "src/cost/mc_evaluator.hh"
#include "src/dnn/graph.hh"
#include "src/eval/breakdown.hh"
#include "src/eval/energy_model.hh"

namespace gemini::cost {

class CostStack
{
  public:
    explicit CostStack(const arch::ArchConfig &cfg,
                       const arch::TechParams &tech = {},
                       CostParams mc_params = {});

    const arch::ArchConfig &config() const { return energy_.config(); }
    const eval::EnergyModel &energy() const { return energy_; }
    const McEvaluator &mc() const { return mc_; }

    // ---- Layer 1: unit energies / timings (per-topology terms here) ----

    /** Energy of hop-weighted on-chip traffic. */
    Joules onChipJ(double bytes) const { return energy_.onChipJ(bytes); }

    /**
     * Energy of hop-weighted D2D traffic. Under the hierarchical NoP+NoC
     * topology the D2D links are the NoP gateway links, which pay the
     * additional serialization energy on top of the GRS channel.
     */
    Joules
    d2dJ(double bytes) const
    {
        return energy_.d2dJ(bytes) + nopSerJPerByte_ * bytes;
    }

    /** Energy of DRAM accesses. */
    Joules dramJ(double bytes) const { return energy_.dramJ(bytes); }

    /** Per-DRAM-stack bandwidth in bytes/second. */
    double dramStackBps() const { return energy_.dramStackBps(); }

    // ---- Layer 2: monetary cost ----

    /** Full MC evaluation of the bound architecture (computed on demand;
     * MC depends only on the architecture, never on the workload). */
    CostBreakdown mcBreakdown() const { return mc_.evaluate(config()); }

    // ---- Layer 3: scalar objectives ----

    /**
     * GLB-overflow-penalized SA mapping objective over per-group
     * breakdowns: (sum_g E_g p_g)^beta * (sum_g D_g p_g)^gamma with
     * p_g = (1 + overflow_g)^2 (Sec. V-A with the repo's soft feasibility
     * penalty).
     */
    static double saCost(const std::vector<eval::EvalBreakdown> &groups,
                         double beta, double gamma);

    /**
     * Penalized contribution of one group to the SA cost's E and D sums
     * (the incremental accumulator of the SA hot path re-derives only the
     * touched groups' contributions).
     */
    static void saContribution(const eval::EvalBreakdown &g, double &energy,
                               double &delay);

    /** Scalar SA cost from accumulated contribution sums. */
    static double saScalar(double energy, double delay, double beta,
                           double gamma);

    /** The DSE objective MC^alpha * E^beta * D^gamma. */
    static double dseObjective(double mc_total, double energy_geo,
                               double delay_geo, double alpha, double beta,
                               double gamma);

    /**
     * Workload-independent DSE objective lower bound of the bound
     * architecture. MC is exact. Per model, any mapping must (a) execute
     * every MAC, so delay is at least total MACs over the peak MAC rate
     * and energy at least MACs times the unit MAC energy, and (b) move
     * the compulsory DRAM traffic — each layer's weights at least once
     * plus every network-output element once per batch sample — so delay
     * is also at least those bytes over the aggregate DRAM bandwidth,
     * with the matching DRAM energy floor. (External-input reads are
     * compulsory too but strided kernels may skip input pixels, so they
     * are left out to keep the bound sound; see DESIGN.md.) A 0.1% safety
     * margin absorbs summation-order noise. Returns 0 (trivial bound)
     * for negative exponents, where the bound is not monotone.
     */
    double dseObjectiveLowerBound(
        const std::vector<const dnn::Graph *> &models, std::int64_t batch,
        double mc_total, double alpha, double beta, double gamma) const;

  private:
    eval::EnergyModel energy_;
    McEvaluator mc_;
    double nopSerJPerByte_ = 0.0; ///< nonzero only for HierarchicalNop
};

} // namespace gemini::cost

#endif // GEMINI_COST_COST_STACK_HH
