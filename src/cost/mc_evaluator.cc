#include "src/cost/mc_evaluator.hh"

#include <cmath>
#include <sstream>

#include "src/common/logging.hh"
#include "src/common/math_util.hh"

namespace gemini::cost {

McEvaluator::McEvaluator(CostParams params) : params_(std::move(params))
{
    GEMINI_ASSERT(!params_.chipletSubstrateTiers.empty(),
                  "substrate tiers must be configured");
}

double
McEvaluator::coreAreaMm2(int macs_per_core, int glb_kib) const
{
    return params_.macAreaMm2 * macs_per_core +
           params_.glbAreaMm2PerMiB * (glb_kib / 1024.0) +
           params_.coreFixedAreaMm2;
}

double
McEvaluator::d2dAreaMm2(double d2d_bw_gbps) const
{
    return params_.d2dAreaBaseMm2 + params_.d2dAreaPerGBps * d2d_bw_gbps;
}

double
McEvaluator::dieYield(double area_mm2) const
{
    return std::pow(params_.yieldUnit, area_mm2 / params_.unitAreaMm2);
}

Dollars
McEvaluator::siliconDollars(double area_mm2) const
{
    return area_mm2 / dieYield(area_mm2) * params_.siliconDollarPerMm2;
}

CostBreakdown
McEvaluator::evaluate(const arch::ArchConfig &cfg) const
{
    GEMINI_ASSERT(cfg.validate().empty(), "invalid arch for MC evaluation");
    CostBreakdown bd;

    const bool monolithic = cfg.chipletCount() == 1;
    const int cores_per_chiplet =
        cfg.chipletCoresX() * cfg.chipletCoresY();
    const double core_area = coreAreaMm2(cfg.macsPerCore, cfg.glbKiB);

    // ---- computing chiplets ----
    double d2d_area = 0.0;
    if (!monolithic)
        d2d_area = cfg.d2dPerChiplet() * d2dAreaMm2(cfg.d2dBwGBps);
    double compute_die = cores_per_chiplet * core_area + d2d_area;

    // A monolithic chip carries the DRAM PHY and IO controller on-die.
    const double io_phy_area =
        params_.ioChipletFixedMm2 +
        params_.ioPhyAreaPerGBps * cfg.dramBwGBps / cfg.dramCount;
    int total_dies = cfg.chipletCount();
    double io_die_area = 0.0;
    if (monolithic) {
        compute_die += io_phy_area * cfg.dramCount;
    } else {
        // IO chiplets also carry D2D ports toward the mesh edge rows.
        io_die_area = io_phy_area +
                      cfg.yCores * d2dAreaMm2(cfg.d2dBwGBps);
        total_dies += cfg.dramCount;
    }

    bd.computeDieAreaMm2 = compute_die;
    bd.computeDieYield = dieYield(compute_die);
    bd.d2dAreaFraction = d2d_area > 0.0 ? d2d_area / compute_die : 0.0;
    bd.computeSilicon = cfg.chipletCount() * siliconDollars(compute_die);
    bd.ioSilicon =
        monolithic ? 0.0 : cfg.dramCount * siliconDollars(io_die_area);
    bd.totalSiliconAreaMm2 = cfg.chipletCount() * compute_die +
                             (monolithic ? 0.0
                                         : cfg.dramCount * io_die_area);

    // ---- DRAM ----
    const auto dram_dies = static_cast<int>(std::ceil(
        cfg.dramBwGBps / params_.dramUnitBwGBps));
    bd.dram = dram_dies * params_.dramDiePrice;

    // ---- packaging ----
    const double substrate_area =
        bd.totalSiliconAreaMm2 * params_.substrateScale;
    double dollar_per_mm2 = params_.monolithicSubstrateDollarPerMm2;
    if (!monolithic) {
        for (const auto &tier : params_.chipletSubstrateTiers) {
            dollar_per_mm2 = tier.dollarPerMm2;
            if (substrate_area < tier.maxAreaMm2)
                break;
        }
    }
    const double package_yield =
        std::pow(params_.packageYieldPerDie, total_dies);
    bd.package = substrate_area * dollar_per_mm2 / package_yield;
    return bd;
}

std::string
McEvaluator::describe(const CostBreakdown &bd)
{
    std::ostringstream oss;
    oss << "$" << bd.total() << " (compute $" << bd.computeSilicon
        << ", io $" << bd.ioSilicon << ", dram $" << bd.dram
        << ", package $" << bd.package << "; die " << bd.computeDieAreaMm2
        << " mm^2, yield " << bd.computeDieYield << ", d2d "
        << bd.d2dAreaFraction * 100.0 << "%)";
    return oss.str();
}

} // namespace gemini::cost
