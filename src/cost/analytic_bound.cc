#include "src/cost/analytic_bound.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/noc/interconnect.hh"

namespace gemini::cost {

namespace {

/** Total length of the union of half-open intervals (sorted in place). */
double
sweepUnionLength(std::vector<std::pair<std::int64_t, std::int64_t>> &iv)
{
    if (iv.empty())
        return 0.0;
    std::sort(iv.begin(), iv.end());
    double total = 0.0;
    std::int64_t lo = iv[0].first, hi = iv[0].second;
    for (const auto &[a, b] : iv) {
        if (a > hi) {
            total += static_cast<double>(hi - lo);
            lo = a;
            hi = b;
        } else {
            hi = std::max(hi, b);
        }
    }
    total += static_cast<double>(hi - lo);
    return total;
}

/** One cross-segment activation dependency and its DRAM-read floor. */
struct Edge
{
    int producer = -1; ///< topological index of the producer layer
    double touched = 0.0; ///< exact per-sample element floor of the read
};

/** Arch-independent per-layer facts the segmentation DP folds over. */
struct LayerProfile
{
    double computeSeconds = 0.0; ///< batch-total compute-floor seconds
    double weightBytes = 0.0;
    double ofmapVolume = 0.0; ///< elements per batch sample
    double extTouched = 0.0;  ///< per-sample external-input read floor
    int maxConsumer = -1;     ///< last topological consumer, -1 = none
    bool isOutput = false;
    std::vector<Edge> edges;
};

/**
 * Aggregate bandwidth of the DRAM-adjacent directed link cut: the first
 * link of every DRAM->core route plus the last link of every core->DRAM
 * route, each distinct link counted once. Every DRAM byte crosses at
 * least one link of this cut (reads cross their multicast tree's first
 * hop, writes their route's last hop), so by the weighted mediant
 * inequality the bottleneck-link time of any compiled traffic map is at
 * least total-DRAM-bytes / this sum.
 */
double
dramIngressCutBps(const arch::ArchConfig &cfg)
{
    const noc::InterconnectModel noc(cfg);
    std::vector<noc::LinkKey> links;
    links.reserve(static_cast<std::size_t>(cfg.dramCount) * 2);
    for (int d = 0; d < cfg.dramCount; ++d) {
        const noc::NodeId dram = noc.dramNode(d);
        for (int core = 0; core < cfg.coreCount(); ++core) {
            const auto in = noc.route(dram, core);
            if (!in.empty())
                links.push_back(in.front());
            const auto out = noc.route(core, dram);
            if (!out.empty())
                links.push_back(out.back());
        }
    }
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
    double bps = 0.0;
    for (const noc::LinkKey key : links)
        bps += noc.linkBandwidthBps(noc::linkFrom(key), noc::linkTo(key));
    return bps;
}

/** Per-model floors plus the byte totals behind them. */
struct ModelBound
{
    double delaySeconds = 0.0;
    double energyJoules = 0.0;
    double computeSeconds = 0.0; ///< whole-model compute roofline
    double boundBytes = 0.0;     ///< DRAM bytes along the DP-optimal path
    double refetchBytes = 0.0;   ///< boundBytes above weights + outputs
};

ModelBound
boundOneModel(const arch::ArchConfig &cfg, const arch::TechParams &tech,
              const dnn::Graph &g, std::int64_t batch, int maxGroupLayers,
              double cut_bps)
{
    const int n = static_cast<int>(g.size());
    const double b = static_cast<double>(batch);
    const double core_rate = static_cast<double>(cfg.coreCount()) *
                             cfg.freqGHz * 1e9;
    const double vec_lanes = std::max(
        1, cfg.macsPerCore / std::max(1, tech.vecLaneDivisor));
    const double dram_bps = cfg.dramBwGBps * 1e9;

    std::vector<LayerProfile> prof(static_cast<std::size_t>(n));
    double total_macs = 0.0, total_vec = 0.0, out_volume = 0.0;
    for (int i = 0; i < n; ++i) {
        const dnn::Layer &l = g.layers()[static_cast<std::size_t>(i)];
        LayerProfile &p = prof[static_cast<std::size_t>(i)];
        const double macs = static_cast<double>(l.macsPerSample());
        const double vec = static_cast<double>(l.vectorOpsPerSample());
        total_macs += macs;
        total_vec += vec;
        // Every MAC runs on an array with utilization <= 1 and every
        // vector op on the vector lanes; core groups within a layer
        // group are disjoint, so folding per-layer floors over the full
        // core count (mediant inequality) bounds the group stage time.
        p.computeSeconds =
            b * std::max(macs / cfg.macsPerCore, vec / vec_lanes) /
            core_rate;
        p.weightBytes = static_cast<double>(l.weightBytes());
        p.ofmapVolume = static_cast<double>(l.ofmapVolume());
        p.isOutput = l.isOutput;
        if (l.isOutput)
            out_volume += p.ofmapVolume;
        for (const LayerId c : g.consumers(i))
            p.maxConsumer = std::max(p.maxConsumer, static_cast<int>(c));
        if (l.inputs.empty()) {
            p.extTouched = touchedInputVolume(g, i, 0);
        } else {
            for (std::size_t j = 0; j < l.inputs.size(); ++j)
                p.edges.push_back({static_cast<int>(l.inputs[j]),
                                   touchedInputVolume(g, i, j)});
        }
    }

    const double compulsory =
        static_cast<double>(g.totalWeightBytes()) + b * out_volume;
    const double compute_floor =
        b * std::max(total_macs / cfg.macsPerCore, total_vec / vec_lanes) /
        core_rate;

    ModelBound mb;
    mb.computeSeconds = compute_floor;
    mb.energyJoules =
        b * (total_macs * tech.macJ + total_vec * tech.vecOpJ);
    if (maxGroupLayers <= 0) {
        // Aggregate-roofline fallback (the pre-analytical bound): peak
        // MACs vs. compulsory bytes over the full DRAM bandwidth.
        mb.boundBytes = compulsory;
        mb.delaySeconds = std::max(compute_floor, compulsory / dram_bps);
        mb.energyJoules += compulsory * tech.dramJPerByte;
        return mb;
    }

    // Any achievable grouping is a contiguous topological segmentation
    // with segments of at most L layers (the partitioner's DP cap, also
    // bounded by the core count since per-layer core groups are disjoint
    // and non-empty; the SA operators never change group membership).
    const int L = std::max(1, std::min(maxGroupLayers, cfg.coreCount()));

    // Compulsory DRAM bytes of segment [j, i): weights stream at least
    // once per group execution; activations produced before the segment
    // (or externally) are read at their exact touched-element floor per
    // batch sample; ofmaps consumed after the segment (or leaving the
    // network) are stored exactly once per sample.
    auto segment_bytes = [&](int j, int i) {
        double bytes = 0.0;
        for (int l = j; l < i; ++l) {
            const LayerProfile &p = prof[static_cast<std::size_t>(l)];
            bytes += p.weightBytes + b * p.extTouched;
            for (const Edge &e : p.edges)
                if (e.producer < j)
                    bytes += b * e.touched;
            if (p.isOutput || p.maxConsumer >= i)
                bytes += b * p.ofmapVolume;
        }
        return bytes;
    };

    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dp_delay(static_cast<std::size_t>(n) + 1, inf);
    std::vector<double> dp_bytes(static_cast<std::size_t>(n) + 1, inf);
    std::vector<int> parent(static_cast<std::size_t>(n) + 1, -1);
    std::vector<double> pref_cw(static_cast<std::size_t>(n) + 1, 0.0);
    for (int i = 0; i < n; ++i)
        pref_cw[static_cast<std::size_t>(i) + 1] =
            pref_cw[static_cast<std::size_t>(i)] +
            prof[static_cast<std::size_t>(i)].computeSeconds;
    dp_delay[0] = 0.0;
    dp_bytes[0] = 0.0;
    for (int i = 1; i <= n; ++i) {
        for (int j = std::max(0, i - L); j < i; ++j) {
            const double bytes = segment_bytes(j, i);
            const double c_seg = pref_cw[static_cast<std::size_t>(i)] -
                                 pref_cw[static_cast<std::size_t>(j)];
            const double d_seg = bytes / dram_bps;
            const double n_seg = cut_bps > 0.0 ? bytes / cut_bps : 0.0;
            const double seg = std::max({c_seg, d_seg, n_seg});
            if (dp_delay[static_cast<std::size_t>(j)] + seg <
                dp_delay[static_cast<std::size_t>(i)]) {
                dp_delay[static_cast<std::size_t>(i)] =
                    dp_delay[static_cast<std::size_t>(j)] + seg;
                parent[static_cast<std::size_t>(i)] = j;
            }
            dp_bytes[static_cast<std::size_t>(i)] =
                std::min(dp_bytes[static_cast<std::size_t>(i)],
                         dp_bytes[static_cast<std::size_t>(j)] + bytes);
        }
    }

    // Reconstruct the delay-optimal segmentation's byte total for the
    // explanatory components.
    double path_bytes = 0.0;
    for (int i = n; i > 0; i = parent[static_cast<std::size_t>(i)])
        path_bytes += segment_bytes(parent[static_cast<std::size_t>(i)], i);

    const double bytes_lb =
        std::max(dp_bytes[static_cast<std::size_t>(n)], compulsory);
    mb.boundBytes = path_bytes;
    mb.refetchBytes = std::max(0.0, path_bytes - compulsory);
    mb.delaySeconds =
        std::max({dp_delay[static_cast<std::size_t>(n)], compute_floor,
                  compulsory / dram_bps});
    mb.energyJoules += bytes_lb * tech.dramJPerByte;
    return mb;
}

/** log of x guarded against zero floors (geomean accumulation). */
double
safeLog(double x)
{
    return std::log(std::max(x, 1e-300));
}

} // namespace

double
touchedInputVolume(const dnn::Graph &graph, LayerId layer,
                   std::size_t input_idx)
{
    const dnn::Layer &l = graph.layer(layer);
    const LayerId producer =
        l.inputs.empty() ? -1 : l.inputs[input_idx];
    std::int64_t pc = 0, ph = 0, pw = 0;
    graph.producerShape(producer, pc, ph, pw);
    const dnn::Region out = dnn::Region::full(l.k, l.h, l.w);
    const dnn::Region box =
        l.requiredInput(input_idx, out).clampTo(pc, ph, pw);
    if (box.empty())
        return 0.0;
    // Per-output projections are axis-separable for every layer kind, so
    // the touched set is exactly (channel extent) x (union of per-row
    // height needs) x (union of per-column width needs). The full-region
    // bounding box alone would overcount: stride > kernel leaves holes
    // between rows/columns that no request ever reads.
    std::vector<std::pair<std::int64_t, std::int64_t>> iv;
    iv.reserve(static_cast<std::size_t>(l.h));
    for (std::int64_t oh = 0; oh < l.h; ++oh) {
        const dnn::Region r =
            l.requiredInput(input_idx, {0, l.k, oh, oh + 1, 0, l.w})
                .clampTo(pc, ph, pw);
        if (!r.empty())
            iv.emplace_back(r.h0, r.h1);
    }
    const double h_len = sweepUnionLength(iv);
    iv.clear();
    for (std::int64_t ow = 0; ow < l.w; ++ow) {
        const dnn::Region r =
            l.requiredInput(input_idx, {0, l.k, 0, l.h, ow, ow + 1})
                .clampTo(pc, ph, pw);
        if (!r.empty())
            iv.emplace_back(r.w0, r.w1);
    }
    const double w_len = sweepUnionLength(iv);
    return static_cast<double>(box.channels()) * h_len * w_len;
}

AnalyticBoundResult
analyticLowerBound(const arch::ArchConfig &cfg,
                   const arch::TechParams &tech,
                   const std::vector<const dnn::Graph *> &models,
                   std::int64_t batch, int maxGroupLayers)
{
    AnalyticBoundResult r;
    if (models.empty())
        return r;
    const double cut_bps = maxGroupLayers > 0 ? dramIngressCutBps(cfg)
                                              : 0.0;
    const double dram_bps = cfg.dramBwGBps * 1e9;
    double log_delay = 0.0, log_energy = 0.0;
    double log_compute = 0.0, log_dram = 0.0, log_noc = 0.0;
    double log_refetch = 0.0;
    for (const dnn::Graph *g : models) {
        const ModelBound mb =
            boundOneModel(cfg, tech, *g, batch, maxGroupLayers, cut_bps);
        log_delay += safeLog(mb.delaySeconds);
        log_energy += safeLog(mb.energyJoules);
        log_compute += safeLog(mb.computeSeconds);
        log_dram += safeLog(mb.boundBytes / dram_bps);
        log_noc += safeLog(cut_bps > 0.0 ? mb.boundBytes / cut_bps : 0.0);
        log_refetch += safeLog(mb.refetchBytes);
    }
    const double n = static_cast<double>(models.size());
    r.delayGeoSeconds = std::exp(log_delay / n);
    r.energyGeoJoules = std::exp(log_energy / n);
    r.components.computeSeconds = std::exp(log_compute / n);
    r.components.dramSeconds = std::exp(log_dram / n);
    r.components.nocSeconds = std::exp(log_noc / n);
    r.components.refetchBytes = std::exp(log_refetch / n);
    return r;
}

} // namespace gemini::cost
