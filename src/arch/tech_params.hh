/**
 * @file
 * Technology constants of the 12 nm default process: unit energies for
 * compute/storage/interconnect and the core's microarchitectural ratios.
 * The paper publishes its cost-model formulas but not every constant; each
 * value here carries the public source or calibration rationale it was
 * taken from (see also DESIGN.md "Modeling notes").
 */

#ifndef GEMINI_ARCH_TECH_PARAMS_HH
#define GEMINI_ARCH_TECH_PARAMS_HH

namespace gemini::arch {

/**
 * Unit energies (all in joules) and core microarchitecture ratios.
 * Defaults model TSMC 12 nm at 1 GHz with 8-bit arithmetic, matching the
 * paper's default process and the Simba/GRS link technology.
 */
struct TechParams
{
    // ---- compute ----

    /** Energy of one 8-bit MAC incl. its operand register reads. */
    double macJ = 0.30e-12;

    /** Energy of one vector-unit op (activation, pooling compare...). */
    double vecOpJ = 0.15e-12;

    // ---- storage ----

    /** GLB (multi-bank SRAM, 0.25-8 MB) access energy per byte. */
    double glbJPerByte = 1.0e-12;

    /** PE-local operand buffer access energy per byte. */
    double bufJPerByte = 0.3e-12;

    // ---- interconnect ----

    /**
     * On-chip NoC energy per byte per hop (router + wire). The paper cites
     * "<0.1 pJ/bit" for on-chip lines; 0.08 pJ/bit == 0.64 pJ/byte.
     */
    double nocHopJPerByte = 0.64e-12;

    /**
     * D2D link energy per byte (clock-forwarded GRS, the paper's default
     * D2D model): ~1 pJ/bit == 8 pJ/byte [Poulton et al. JSSC'19].
     */
    double d2dJPerByte = 8.0e-12;

    /** DRAM access energy per byte (GDDR6 incl. PHY): ~6 pJ/bit. */
    double dramJPerByte = 48.0e-12;

    /**
     * Extra per-byte energy of NoP gateway serialization under the
     * hierarchical NoP+NoC topology: flit packetization + clock-domain
     * crossing at the package-level routers, on top of the GRS link
     * energy (SIAM models the NoP driver separately from the channel;
     * ~0.125 pJ/bit == 1 pJ/byte). Applied by cost::CostStack to D2D
     * (= NoP) traffic only when the topology is HierarchicalNop.
     */
    double nopSerializationJPerByte = 1.0e-12;

    // ---- core microarchitecture ratios ----

    /**
     * Input-channel lanes of the NVDLA-style MAC array (the atomic-C
     * dimension); K lanes are macsPerCore / lanesC.
     */
    int lanesC = 64;

    /** Vector-unit lanes as a fraction of the MAC count (macs/16). */
    int vecLaneDivisor = 16;

    /** GLB read/write port width in bytes/cycle per MAC (macs/8 bytes). */
    double glbBytesPerCyclePerMac = 0.125;

    /** Weight operand buffer bytes per MAC (1024 MACs -> 32 KiB). */
    double wbufBytesPerMac = 32.0;

    /** Input operand buffer bytes per MAC. */
    double ibufBytesPerMac = 8.0;

    /** Accumulator buffer bytes per MAC (32-bit psums). */
    double abufBytesPerMac = 12.0;
};

} // namespace gemini::arch

#endif // GEMINI_ARCH_TECH_PARAMS_HH
