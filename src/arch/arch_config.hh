/**
 * @file
 * The configurable hardware template of Sec. III: a 2-D mesh (or folded
 * torus) of computing cores partitioned into chiplets by XCut/YCut, plus IO
 * chiplets carrying the DRAM controllers. Every parameter of Table I is a
 * field here.
 */

#ifndef GEMINI_ARCH_ARCH_CONFIG_HH
#define GEMINI_ARCH_ARCH_CONFIG_HH

#include <cstdint>
#include <string>

#include "src/common/types.hh"

namespace gemini::arch {

/**
 * Interconnect topology of the hardware template. Mesh and folded torus
 * are the paper's scenarios (Sec. III, Sec. VI-B2); the concentrated ring
 * and the SIAM-style two-level NoP+NoC hierarchy are additional backends
 * behind the noc::InterconnectModel seam (see src/noc/topologies.hh).
 */
enum class Topology
{
    Mesh,
    FoldedTorus,
    /** Row-concentrated bidirectional ring: one ring stop per mesh row. */
    ConcentratedRing,
    /**
     * Two-level hierarchy: XY mesh inside each chiplet (NoC) plus an XY
     * mesh of chiplet gateway routers (NoP). Monolithic designs degrade
     * to the plain mesh.
     */
    HierarchicalNop,
};

/** All topology values, in declaration order (DSE axis enumeration). */
inline constexpr Topology kAllTopologies[] = {
    Topology::Mesh, Topology::FoldedTorus, Topology::ConcentratedRing,
    Topology::HierarchicalNop};

const char *topologyName(Topology t);

/**
 * Inverse of topologyName ("mesh", "folded-torus", ...). Returns false
 * on an unknown name, leaving `out` untouched — callers (the JSON spec
 * layer) turn that into an actionable error listing the valid names.
 */
bool topologyFromName(const std::string &name, Topology &out);

/**
 * Architecture parameters (Sec. III "Configurable Parameters").
 *
 * A configuration is usually written as the paper's tuple
 * (ChipletNum, CoreNum, DRAM_BW, NoC_BW, D2D_BW, GBUF/Core, MAC/Core);
 * toString() prints that form.
 */
struct ArchConfig
{
    std::string name = "custom";

    /** Cores in the X direction of the global mesh. */
    int xCores = 6;
    /** Cores in the Y direction of the global mesh. */
    int yCores = 6;
    /** Chiplet divisions along X (1 = no cut). */
    int xCut = 1;
    /** Chiplet divisions along Y. */
    int yCut = 1;

    Topology topology = Topology::Mesh;

    /** Per-link NoC bandwidth, GB/s, per direction. */
    double nocBwGBps = 32.0;
    /** Per-link D2D bandwidth, GB/s, per direction. */
    double d2dBwGBps = 16.0;
    /** Total DRAM bandwidth, GB/s, across all DRAM stacks. */
    double dramBwGBps = 144.0;
    /** Number of DRAM stacks / IO-chiplet controllers (paper's D). */
    int dramCount = 2;

    /** 8-bit MACs in the PE array of one core. */
    int macsPerCore = 1024;
    /** Global buffer per core, KiB. */
    int glbKiB = 2048;

    /** Operating frequency (the paper's default is 1 GHz). */
    double freqGHz = 1.0;

    // ------------------------------------------------------------------

    int coreCount() const { return xCores * yCores; }
    int chipletCount() const { return xCut * yCut; }

    /** Cores per chiplet along X/Y. */
    int chipletCoresX() const { return xCores / xCut; }
    int chipletCoresY() const { return yCores / yCut; }

    /** Peak throughput in TOPS (2 ops per MAC per cycle). */
    double
    tops() const
    {
        return 2.0 * coreCount() * macsPerCore * freqGHz / 1000.0;
    }

    /** Total on-package GLB capacity in bytes. */
    Bytes
    totalGlbBytes() const
    {
        return static_cast<Bytes>(coreCount()) * glbKiB * 1024;
    }

    /** GLB capacity of one core in bytes. */
    Bytes glbBytes() const { return static_cast<Bytes>(glbKiB) * 1024; }

    /**
     * D2D interfaces on one computing chiplet: one per perimeter core per
     * side (Sec. III places `cores-per-side` D2Ds on each of the 4 sides).
     * Monolithic designs have none.
     */
    int d2dPerChiplet() const;

    /** Total D2D interfaces over all computing chiplets. */
    int totalD2d() const { return chipletCount() == 1
                               ? 0 : d2dPerChiplet() * chipletCount(); }

    // Core coordinate helpers (row-major core ids).
    int coreX(CoreId id) const { return id % xCores; }
    int coreY(CoreId id) const { return id / xCores; }
    CoreId coreAt(int x, int y) const { return y * xCores + x; }

    /** Chiplet index (row-major over the cut grid) owning a core. */
    int
    chipletOf(CoreId id) const
    {
        const int cx = coreX(id) / chipletCoresX();
        const int cy = coreY(id) / chipletCoresY();
        return cy * xCut + cx;
    }

    /** True when the hop between two adjacent cores crosses a D2D link. */
    bool
    crossesChiplet(CoreId a, CoreId b) const
    {
        return chipletOf(a) != chipletOf(b);
    }

    /**
     * Validate parameter consistency (cuts divide the core grid, positive
     * bandwidths...). Returns an error message or empty when valid — the
     * DSE uses this to discard invalid candidates exactly as the paper
     * does ("XCut and YCut must be a factor of the number of cores on
     * edge; otherwise, the candidate is deemed invalid").
     */
    std::string validate() const;

    /** The paper's 7-tuple form. */
    std::string toString() const;

    /** Equality over all architectural parameters (not the name). */
    bool operator==(const ArchConfig &o) const;
};

} // namespace gemini::arch

#endif // GEMINI_ARCH_ARCH_CONFIG_HH
