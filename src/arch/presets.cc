#include "src/arch/presets.hh"

namespace gemini::arch {

ArchConfig
simbaArch()
{
    ArchConfig a;
    a.name = "S-Arch";
    a.xCores = 6;
    a.yCores = 6;
    a.xCut = 6;
    a.yCut = 6;
    a.topology = Topology::Mesh;
    // Simba's GRS package links provide noticeably less bandwidth than the
    // on-chip network; the paper's explored G-Arch doubles both relative to
    // this baseline and doubles the 1 MB/core GLB of the Simba-series
    // papers ([58] allocates 1024 KB per core).
    a.nocBwGBps = 16.0;
    a.d2dBwGBps = 8.0;
    a.dramBwGBps = 144.0; // 2 GB/s per TOPs as in Sec. VI-A4
    a.dramCount = 2;
    a.macsPerCore = 1024;
    a.glbKiB = 1024;
    return a;
}

ArchConfig
gArch72()
{
    ArchConfig a;
    a.name = "G-Arch";
    a.xCores = 6;
    a.yCores = 6;
    a.xCut = 2;
    a.yCut = 1;
    a.topology = Topology::Mesh;
    a.nocBwGBps = 32.0;
    a.d2dBwGBps = 16.0;
    a.dramBwGBps = 144.0;
    a.dramCount = 2;
    a.macsPerCore = 1024;
    a.glbKiB = 2048;
    return a;
}

ArchConfig
tArchGrayskull()
{
    ArchConfig a;
    a.name = "T-Arch";
    a.xCores = 12;
    a.yCores = 10;
    a.xCut = 1;
    a.yCut = 1;
    a.topology = Topology::FoldedTorus;
    a.nocBwGBps = 64.0;
    a.d2dBwGBps = 64.0; // unused: monolithic
    a.dramBwGBps = 128.0; // 8 LPDDR4 channels
    a.dramCount = 2;
    a.macsPerCore = 1024;
    a.glbKiB = 1024;
    return a;
}

ArchConfig
gArchTorus()
{
    ArchConfig a;
    a.name = "G-Arch-torus";
    a.xCores = 10;
    a.yCores = 6;
    a.xCut = 2;
    a.yCut = 3;
    a.topology = Topology::FoldedTorus;
    a.nocBwGBps = 64.0;
    a.d2dBwGBps = 32.0;
    a.dramBwGBps = 480.0;
    a.dramCount = 2;
    a.macsPerCore = 2048;
    a.glbKiB = 2048;
    return a;
}

ArchConfig
largeGridArch(Topology topology)
{
    ArchConfig a;
    a.name = "L-Arch-256";
    a.xCores = 16;
    a.yCores = 16;
    a.xCut = 4;
    a.yCut = 4; // 16 chiplets of 4x4 cores
    a.topology = topology;
    a.nocBwGBps = 64.0;
    a.d2dBwGBps = 32.0;
    // 2 GB/s per TOPs (Sec. VI-A4 sizing rule): 256 cores * 1024 MACs
    // * 2 ops = 512 TOPs -> 1 TB/s across 8 stacks.
    a.dramBwGBps = 1024.0;
    a.dramCount = 8;
    a.macsPerCore = 1024;
    a.glbKiB = 2048;
    return a;
}

namespace presets {

namespace {

/** The registry rows; a single table keeps names() and byName() in sync. */
struct PresetRow
{
    const char *name;
    ArchConfig (*make)();
};

ArchConfig
largeGridDefault()
{
    return largeGridArch();
}

constexpr PresetRow kPresets[] = {
    {"s_arch", simbaArch},
    {"g_arch_72", gArch72},
    {"t_arch", tArchGrayskull},
    {"g_arch_torus", gArchTorus},
    {"large_grid", largeGridDefault},
    {"tiny", tinyArch},
};

} // namespace

std::vector<std::string>
names()
{
    std::vector<std::string> out;
    out.reserve(std::size(kPresets));
    for (const PresetRow &row : kPresets)
        out.emplace_back(row.name);
    return out;
}

std::optional<ArchConfig>
byName(const std::string &name)
{
    for (const PresetRow &row : kPresets)
        if (name == row.name)
            return row.make();
    return std::nullopt;
}

} // namespace presets

ArchConfig
tinyArch()
{
    ArchConfig a;
    a.name = "tiny";
    a.xCores = 2;
    a.yCores = 2;
    a.xCut = 1;
    a.yCut = 1;
    a.topology = Topology::Mesh;
    a.nocBwGBps = 32.0;
    a.d2dBwGBps = 16.0;
    a.dramBwGBps = 32.0;
    a.dramCount = 2;
    a.macsPerCore = 256;
    a.glbKiB = 512;
    return a;
}

} // namespace gemini::arch
