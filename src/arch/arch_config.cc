#include "src/arch/arch_config.hh"

#include <cmath>
#include <sstream>

namespace gemini::arch {

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::Mesh: return "mesh";
      case Topology::FoldedTorus: return "folded-torus";
      case Topology::ConcentratedRing: return "concentrated-ring";
      case Topology::HierarchicalNop: return "hierarchical-nop";
    }
    return "?";
}

bool
topologyFromName(const std::string &name, Topology &out)
{
    for (const Topology t : kAllTopologies) {
        if (name == topologyName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

int
ArchConfig::d2dPerChiplet() const
{
    if (chipletCount() == 1)
        return 0;
    return 2 * (chipletCoresX() + chipletCoresY());
}

std::string
ArchConfig::validate() const
{
    std::ostringstream err;
    if (xCores <= 0 || yCores <= 0)
        return "core grid dims must be positive";
    if (xCut <= 0 || yCut <= 0)
        return "cut counts must be positive";
    if (xCores % xCut != 0) {
        err << "XCut " << xCut << " does not divide xCores " << xCores;
        return err.str();
    }
    if (yCores % yCut != 0) {
        err << "YCut " << yCut << " does not divide yCores " << yCores;
        return err.str();
    }
    if (nocBwGBps <= 0 || dramBwGBps <= 0)
        return "bandwidths must be positive";
    if (chipletCount() > 1 && d2dBwGBps <= 0)
        return "D2D bandwidth must be positive on multi-chiplet designs";
    if (dramCount < 1)
        return "need at least one DRAM";
    if (macsPerCore <= 0 || glbKiB <= 0)
        return "core resources must be positive";
    if (freqGHz <= 0)
        return "frequency must be positive";
    return {};
}

std::string
ArchConfig::toString() const
{
    std::ostringstream oss;
    auto gbuf_mb = glbKiB / 1024.0;
    oss << "(" << chipletCount() << ", " << coreCount() << ", "
        << dramBwGBps << "GB/s, " << nocBwGBps << "GB/s, ";
    if (chipletCount() > 1)
        oss << d2dBwGBps << "GB/s, ";
    else
        oss << "None, ";
    if (gbuf_mb >= 1.0)
        oss << gbuf_mb << "MB, ";
    else
        oss << glbKiB << "KB, ";
    oss << macsPerCore << ")";
    switch (topology) {
      case Topology::Mesh: break;
      case Topology::FoldedTorus: oss << "[torus]"; break;
      case Topology::ConcentratedRing: oss << "[ring]"; break;
      case Topology::HierarchicalNop: oss << "[nop]"; break;
    }
    return oss.str();
}

bool
ArchConfig::operator==(const ArchConfig &o) const
{
    return xCores == o.xCores && yCores == o.yCores && xCut == o.xCut &&
           yCut == o.yCut && topology == o.topology &&
           nocBwGBps == o.nocBwGBps && d2dBwGBps == o.d2dBwGBps &&
           dramBwGBps == o.dramBwGBps && dramCount == o.dramCount &&
           macsPerCore == o.macsPerCore && glbKiB == o.glbKiB &&
           freqGHz == o.freqGHz;
}

} // namespace gemini::arch
