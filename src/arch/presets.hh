/**
 * @file
 * Named architecture presets used in the paper's evaluation (Sec. VI-A4).
 */

#ifndef GEMINI_ARCH_PRESETS_HH
#define GEMINI_ARCH_PRESETS_HH

#include <optional>
#include <string>
#include <vector>

#include "src/arch/arch_config.hh"

namespace gemini::arch {

/**
 * S-Arch: the Simba baseline — 36 chiplets of one NVDLA-style core each
 * (6x6 mesh, XCut=YCut=6), 72 TOPs, 1 MB GLB/core, DRAM 2 GB/s per TOPs
 * via two IO dies (the paper equips the Simba test chip with DRAM).
 */
ArchConfig simbaArch();

/**
 * G-Arch (72 TOPs): the architecture Gemini's DSE finds —
 * (2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024).
 */
ArchConfig gArch72();

/**
 * T-Arch: monolithic 120-core accelerator with Tenstorrent Grayskull
 * parameters (12x10 core array, folded torus, 1 MB GLB/core), Sec. VI-B2.
 */
ArchConfig tArchGrayskull();

/**
 * The folded-torus architecture Gemini finds against T-Arch:
 * (6, 60, 480GB/s, 64GB/s, 32GB/s, 2MB, 2048).
 */
ArchConfig gArchTorus();

/**
 * Paper-scale stress grid: 256 cores (16x16) in 16 chiplets (4x4 cut),
 * 512 TOPs, 8 DRAM stacks sized by the 2 GB/s-per-TOPs rule. The
 * scaling scenario of the delta-evaluation benchmarks — any topology
 * backend (the 16-row grid satisfies every backend's constraints).
 */
ArchConfig largeGridArch(Topology topology = Topology::Mesh);

/** A 4-core single-chiplet toy config for tests and the quickstart. */
ArchConfig tinyArch();

namespace presets {

/**
 * Name -> preset registry mirroring dnn::zoo: lets ExperimentSpecs and
 * the gemini CLI reference architectures symbolically ("g_arch_72")
 * instead of constructing ArchConfigs in C++. Names accepted by byName().
 */
std::vector<std::string> names();

/**
 * Look up a preset by registry name. nullopt for unknown names (the spec
 * layer reports the valid list); parameterized presets use their default
 * arguments (largeGridArch -> mesh).
 */
std::optional<ArchConfig> byName(const std::string &name);

} // namespace presets

} // namespace gemini::arch

#endif // GEMINI_ARCH_PRESETS_HH
