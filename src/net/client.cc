#include "src/net/client.hh"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace gemini::net {

namespace {

void
setTimeouts(int fd, double seconds)
{
    timeval tv;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool
sendAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t n =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

/** Deliver every complete line buffered in `body`, consuming them. */
bool
drainLines(std::string &body,
           const std::function<bool(std::string_view line)> &onLine)
{
    std::size_t start = 0;
    bool keepGoing = true;
    for (;;) {
        const std::size_t nl = body.find('\n', start);
        if (nl == std::string::npos)
            break;
        if (!onLine(std::string_view(body).substr(start, nl - start))) {
            keepGoing = false;
            start = nl + 1;
            break;
        }
        start = nl + 1;
    }
    body.erase(0, start);
    return keepGoing;
}

} // namespace

std::optional<std::pair<std::string, int>>
parseHttpUrl(const std::string &url, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = "server URL \"" + url + "\": " + why;
        return std::nullopt;
    };
    std::string_view rest = url;
    if (rest.rfind("http://", 0) == 0)
        rest.remove_prefix(7);
    else if (rest.find("://") != std::string_view::npos)
        return fail("only http:// is supported");
    // Tolerate a path suffix; the daemon's routes are absolute anyway.
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos)
        rest = rest.substr(0, slash);
    if (rest.empty())
        return fail("missing host");
    const std::size_t colon = rest.rfind(':');
    std::string host(rest.substr(0, colon));
    int port = 80;
    if (colon != std::string_view::npos) {
        const std::string portText(rest.substr(colon + 1));
        char *end = nullptr;
        const long p = std::strtol(portText.c_str(), &end, 10);
        if (portText.empty() || *end != '\0' || p < 1 || p > 65535)
            return fail("invalid port \"" + portText + "\"");
        port = static_cast<int>(p);
    }
    if (host.empty())
        return fail("missing host");
    return std::make_pair(std::move(host), port);
}

HttpClient::HttpClient(std::string host, int port, double timeoutSeconds,
                       HttpLimits limits)
    : host_(std::move(host)), port_(port), timeoutSeconds_(timeoutSeconds),
      limits_(limits)
{
}

int
HttpClient::connect(std::string *error) const
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int gai = ::getaddrinfo(host_.c_str(),
                                  std::to_string(port_).c_str(), &hints,
                                  &res);
    if (gai != 0) {
        if (error)
            *error = "cannot resolve " + host_ + ": " + gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        setTimeouts(fd, timeoutSeconds_);
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0 && error)
        *error = "cannot connect to " + host_ + ":" +
                 std::to_string(port_) + ": " + std::strerror(errno);
    if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    return fd;
}

std::optional<HttpResponse>
HttpClient::request(const std::string &method, const std::string &target,
                    const std::string &body, std::string *error)
{
    const int fd = connect(error);
    if (fd < 0)
        return std::nullopt;

    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
    wire += "Connection: close\r\n";
    if (!body.empty())
        wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    wire += body;
    if (!sendAll(fd, wire)) {
        if (error)
            *error = "send failed: " + std::string(std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }

    HttpParser parser(HttpParser::Kind::Response, limits_);
    char buf[16 * 1024];
    while (parser.needsInput()) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = "receive failed: " +
                         std::string(std::strerror(errno));
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break;
        parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    ::close(fd);
    if (!parser.done()) {
        if (error)
            *error = parser.failed()
                         ? "malformed response: " + parser.error()
                         : "connection closed mid-response";
        return std::nullopt;
    }
    HttpResponse response;
    response.status = parser.responseStatus();
    response.headers = parser.responseHeaders();
    response.body = std::move(parser.responseBody());
    return response;
}

std::optional<int>
HttpClient::stream(const std::string &target,
                   const std::function<bool(std::string_view line)> &onLine,
                   std::string *error)
{
    const int fd = connect(error);
    if (fd < 0)
        return std::nullopt;

    std::string wire = "GET " + target + " HTTP/1.1\r\n";
    wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
    wire += "Connection: close\r\nAccept: application/x-ndjson\r\n\r\n";
    if (!sendAll(fd, wire)) {
        if (error)
            *error = "send failed: " + std::string(std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }

    // Follow the body as it arrives: the parser accumulates decoded
    // bytes (chunked or fixed framing) in its body buffer; every feed is
    // followed by a line-drain so the callback sees events live, not
    // only when the response completes.
    HttpParser parser(HttpParser::Kind::Response, limits_);
    char buf[16 * 1024];
    bool abandoned = false;
    while (parser.needsInput()) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = "receive failed: " +
                         std::string(std::strerror(errno));
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break;
        parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        if (!drainLines(parser.responseBody(), onLine)) {
            abandoned = true;
            break;
        }
    }
    ::close(fd);
    if (!abandoned && !parser.done()) {
        if (error)
            *error = parser.failed()
                         ? "malformed response: " + parser.error()
                         : "connection closed mid-stream";
        return std::nullopt;
    }
    if (!abandoned && !parser.responseBody().empty())
        onLine(parser.responseBody()); // unterminated final line
    return parser.responseStatus();
}

} // namespace gemini::net
