/**
 * @file
 * Dependency-free HTTP/1.1 message layer for the serving subsystem:
 * request/response structs and a strict incremental parser with hard
 * bounds on every dimension an untrusted peer controls (start-line
 * bytes, header count and bytes, body bytes, chunk framing). The parser
 * is push-based — feed() consumes bytes as they arrive off a socket and
 * stops exactly at the end of one message, so pipelined requests are
 * handled by take + reset + feeding the remainder — and never throws:
 * malformed input parks it in a failed state carrying the HTTP status
 * the server should answer with (400/413/431/501/505).
 *
 * Scope: HTTP/1.0 and 1.1, fixed Content-Length and chunked
 * transfer-coding bodies. No obs-folding, no multiple Content-Length
 * values, no Transfer-Encoding other than a single "chunked" — those
 * are request-smuggling vectors, rejected outright rather than
 * normalized. The same state machine parses responses for the client
 * side (status line instead of request line).
 */

#ifndef GEMINI_NET_HTTP_HH
#define GEMINI_NET_HTTP_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gemini::net {

/** Bounds enforced while parsing one message from an untrusted peer. */
struct HttpLimits
{
    std::size_t maxStartLineBytes = 8 * 1024;
    std::size_t maxHeaderBytes = 16 * 1024; ///< all header lines combined
    std::size_t maxHeaders = 64;
    std::size_t maxBodyBytes = 16 * 1024 * 1024;
};

/** Case-insensitive ASCII compare (header names, token values). */
bool iequals(std::string_view a, std::string_view b);

/**
 * Decode %XX escapes (and, when `plusAsSpace`, '+' as ' ' — query
 * strings only). Returns false on a truncated or non-hex escape.
 */
bool percentDecode(std::string_view in, std::string &out,
                   bool plusAsSpace = false);

struct HttpRequest
{
    std::string method;  ///< e.g. "GET" (token, case-sensitive)
    std::string target;  ///< raw request-target as sent
    std::string path;    ///< decoded path, query stripped
    std::vector<std::pair<std::string, std::string>> query; ///< decoded
    int versionMinor = 1; ///< HTTP/1.<minor>
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool keepAlive = true; ///< resolved from version + Connection header

    /** Header value by case-insensitive name; nullptr when absent. */
    const std::string *header(std::string_view name) const;

    /** First query parameter named `key`, else `fallback`. */
    std::string queryParam(std::string_view key,
                           std::string_view fallback = "") const;
};

struct HttpResponse
{
    int status = 200;
    std::string reason; ///< empty = canonical reason for `status`
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    const std::string *header(std::string_view name) const;

    void
    setHeader(std::string name, std::string value)
    {
        headers.emplace_back(std::move(name), std::move(value));
    }

    /**
     * Wire form with Content-Length spliced in (unless a
     * Transfer-Encoding header is already present — streamed responses
     * serialize their head separately; see serializeHead).
     */
    std::string serialize() const;

    /** Status + headers + blank line only (chunked streaming). */
    std::string serializeHead() const;
};

/** Canonical reason phrase ("Not Found", ...); "Unknown" off-registry. */
const char *statusReason(int status);

/** A JSON convenience response (application/json body + trailing \n). */
HttpResponse jsonResponse(int status, const std::string &jsonText);

class HttpParser
{
  public:
    enum class Kind
    {
        Request, ///< parse request line + message
        Response ///< parse status line + message (client side)
    };

    explicit HttpParser(Kind kind = Kind::Request, HttpLimits limits = {});

    /**
     * Consume bytes. Returns how many were taken — all of them until the
     * message completes; once done() (or failed()) no further byte is
     * consumed, and the caller owns the remainder (the next pipelined
     * message). Call reset() after taking the message to continue.
     */
    std::size_t feed(std::string_view data);

    /** A full message is parsed and ready to take. */
    bool done() const { return state_ == State::Done; }

    /** The input violated the grammar or a limit; see error(). */
    bool failed() const { return state_ == State::Error; }

    /** True while neither done nor failed (more input needed). */
    bool needsInput() const { return !done() && !failed(); }

    const std::string &error() const { return error_; }

    /** The HTTP status a server should answer a failed() parse with. */
    int errorStatus() const { return errorStatus_; }

    /** The parsed request (valid once done(); Kind::Request). */
    HttpRequest &request() { return request_; }

    /** Response status code (valid once done(); Kind::Response). */
    int responseStatus() const { return responseStatus_; }

    /** Headers/body of a parsed response (valid once done()). */
    const std::vector<std::pair<std::string, std::string>> &
    responseHeaders() const
    {
        return request_.headers;
    }
    std::string &responseBody() { return request_.body; }

    /** Ready the parser for the next message on the same connection. */
    void reset();

  private:
    enum class State
    {
        StartLine,
        Headers,
        FixedBody,
        ChunkSize,
        ChunkData,
        ChunkDataEnd, ///< the CRLF that closes a chunk's data
        ChunkTrailer,
        Done,
        Error
    };

    bool fail(int status, std::string message);
    bool parseStartLine(std::string_view line);
    bool parseHeaderLine(std::string_view line);
    bool finishHeaders();
    bool parseTarget();

    Kind kind_;
    HttpLimits limits_;
    State state_ = State::StartLine;
    std::string error_;
    int errorStatus_ = 400;

    std::string line_;           ///< partial line accumulator
    std::size_t headerBytes_ = 0;
    std::size_t bodyRemaining_ = 0; ///< fixed body / current chunk left
    std::size_t trailerLines_ = 0;
    bool sawContentLength_ = false;
    bool chunked_ = false;

    HttpRequest request_; ///< doubles as response storage (headers/body)
    int responseStatus_ = 0;
};

} // namespace gemini::net

#endif // GEMINI_NET_HTTP_HH
