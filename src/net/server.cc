#include "src/net/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "src/common/fault_injection.hh"
#include "src/common/logging.hh"

namespace gemini::net {

namespace fault = common::fault;

namespace {

void
setRecvTimeout(int fd, double seconds)
{
    timeval tv;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

} // namespace

// ---------------------------------------------------------------- writer --

bool
ResponseWriter::serverStopping() const
{
    return server_.stopping();
}

bool
ResponseWriter::writeAll(std::string_view data)
{
    if (broken_)
        return false;
    ++writeSerial_;
    if (fault::shouldFail("net.write") ||
        fault::shouldFail("net.write." + std::to_string(writeSerial_))) {
        broken_ = true;
        return false;
    }
    while (!data.empty()) {
        const ssize_t n =
            ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            broken_ = true;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

bool
ResponseWriter::send(const HttpResponse &response)
{
    responded_ = true;
    return writeAll(response.serialize());
}

bool
ResponseWriter::beginStream(HttpResponse head)
{
    responded_ = true;
    streaming_ = true;
    head.setHeader("Transfer-Encoding", "chunked");
    return writeAll(head.serializeHead());
}

bool
ResponseWriter::writeChunk(std::string_view data)
{
    if (data.empty())
        return !broken_;
    char size[32];
    std::snprintf(size, sizeof size, "%zx\r\n", data.size());
    std::string frame = size;
    frame.append(data);
    frame += "\r\n";
    return writeAll(frame);
}

bool
ResponseWriter::endStream()
{
    streaming_ = false;
    return writeAll("0\r\n\r\n");
}

// ---------------------------------------------------------------- server --

HttpServer::HttpServer(HttpHandler handler, ServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options))
{
}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(std::string *error)
{
    const auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("bind address \"" + options_.bindAddress + "\"");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail("bind " + options_.bindAddress + ":" +
                    std::to_string(options_.port));
    if (::listen(listenFd_, options_.backlog) != 0)
        return fail("listen");

    socklen_t len = sizeof addr;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
    const int workers = std::max(1, options_.threads);
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

void
HttpServer::stop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
        // Second caller (e.g. the destructor after an explicit stop):
        // everything below already ran or is running; just join.
        if (acceptThread_.joinable())
            acceptThread_.join();
        for (std::thread &t : workers_)
            if (t.joinable())
                t.join();
        return;
    }

    // Closing the listen socket makes the blocked accept() return.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);

    {
        std::lock_guard lock(mu_);
        // Queued-but-unserved connections are dropped outright; active
        // ones get a socket shutdown so their blocked reads return.
        for (const int fd : pending_)
            ::close(fd);
        pending_.clear();
        for (const int fd : active_)
            ::shutdown(fd, SHUT_RDWR);
    }
    queueCv_.notify_all();

    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
HttpServer::acceptLoop()
{
    while (!stopping()) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (stopping())
                break;
            if (errno == EMFILE || errno == ENFILE) {
                // Out of descriptors: shed load instead of spinning.
                GEMINI_WARN("http: accept: ", std::strerror(errno));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                continue;
            }
            break; // listen socket is gone
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (fault::shouldFail("net.accept")) {
            // Injected connection-level failure: the peer sees an
            // immediate close, exactly like an overloaded kernel
            // dropping the connection post-handshake.
            ::close(fd);
            continue;
        }
        {
            std::lock_guard lock(mu_);
            if (stopping()) {
                ::close(fd);
                break;
            }
            pending_.push_back(fd);
        }
        queueCv_.notify_one();
    }
}

void
HttpServer::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock lock(mu_);
            queueCv_.wait(lock, [this] {
                return stopping() || !pending_.empty();
            });
            if (pending_.empty())
                return; // stopping and drained
            fd = pending_.front();
            pending_.pop_front();
            active_.push_back(fd);
        }
        serveConnection(fd);
        unregisterConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::unregisterConnection(int fd)
{
    std::lock_guard lock(mu_);
    active_.erase(std::remove(active_.begin(), active_.end(), fd),
                  active_.end());
}

void
HttpServer::serveConnection(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // The timeout doubles as the shutdown poll interval: a blocked read
    // wakes at least this often to notice stop(). Capped so shutdown
    // latency stays bounded even with long keep-alive patience.
    setRecvTimeout(fd, std::min(options_.idleTimeoutSeconds, 0.25));

    HttpParser parser(HttpParser::Kind::Request, options_.limits);
    std::string pending; ///< bytes read but not yet consumed (pipelining)
    const auto idleLimit = std::chrono::duration<double>(
        options_.idleTimeoutSeconds);
    auto lastActivity = std::chrono::steady_clock::now();

    for (;;) {
        if (pending.empty()) {
            char buf[16 * 1024];
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    if (stopping())
                        return;
                    if (std::chrono::steady_clock::now() - lastActivity >
                        idleLimit)
                        return; // keep-alive patience exhausted
                    continue;
                }
                return; // connection error
            }
            if (n == 0)
                return; // peer closed
            if (fault::shouldFail("net.read"))
                return; // injected read failure: drop the connection
            pending.assign(buf, static_cast<std::size_t>(n));
            lastActivity = std::chrono::steady_clock::now();
        }

        const std::size_t consumed = parser.feed(pending);
        pending.erase(0, consumed);

        if (parser.failed()) {
            // Strictness is the contract: answer with the parser's
            // status and drop the connection (its framing is unknown).
            ResponseWriter writer(*this, fd);
            writer.send(jsonResponse(
                parser.errorStatus(),
                "{\"error\":\"" + parser.error() + "\"}"));
            return;
        }
        if (!parser.done())
            continue; // torn frame: need more bytes

        HttpRequest request = std::move(parser.request());
        parser.reset();

        ResponseWriter writer(*this, fd);
        try {
            handler_(request, writer);
        } catch (const std::exception &e) {
            if (!writer.responded())
                writer.send(jsonResponse(
                    500, std::string("{\"error\":\"") + e.what() +
                             "\"}"));
            else
                writer.broken_ = true; // half-written response: drop
        }
        if (!writer.responded())
            writer.send(jsonResponse(500, "{\"error\":\"handler sent no "
                                          "response\"}"));
        if (writer.broken() || !request.keepAlive || stopping())
            return;
        lastActivity = std::chrono::steady_clock::now();
    }
}

} // namespace gemini::net
