#include "src/net/http.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace gemini::net {

namespace {

bool
isTokenChar(char c)
{
    // RFC 9110 token: visible ASCII minus delimiters.
    static const std::string_view extra = "!#$%&'*+-.^_`|~";
    return std::isalnum(static_cast<unsigned char>(c)) ||
           extra.find(c) != std::string_view::npos;
}

bool
isToken(std::string_view s)
{
    if (s.empty())
        return false;
    return std::all_of(s.begin(), s.end(), isTokenChar);
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Strip optional ASCII whitespace from both ends of a header value. */
std::string_view
trimmed(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

const std::string *
findHeader(const std::vector<std::pair<std::string, std::string>> &headers,
           std::string_view name)
{
    for (const auto &[k, v] : headers)
        if (iequals(k, name))
            return &v;
    return nullptr;
}

} // namespace

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

bool
percentDecode(std::string_view in, std::string &out, bool plusAsSpace)
{
    out.clear();
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        if (c == '%') {
            if (i + 2 >= in.size())
                return false;
            const int hi = hexDigit(in[i + 1]);
            const int lo = hexDigit(in[i + 2]);
            if (hi < 0 || lo < 0)
                return false;
            out.push_back(static_cast<char>((hi << 4) | lo));
            i += 2;
        } else if (plusAsSpace && c == '+') {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return true;
}

const std::string *
HttpRequest::header(std::string_view name) const
{
    return findHeader(headers, name);
}

std::string
HttpRequest::queryParam(std::string_view key, std::string_view fallback) const
{
    for (const auto &[k, v] : query)
        if (k == key)
            return v;
    return std::string(fallback);
}

const std::string *
HttpResponse::header(std::string_view name) const
{
    return findHeader(headers, name);
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 201: return "Created";
      case 202: return "Accepted";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 409: return "Conflict";
      case 413: return "Content Too Large";
      case 422: return "Unprocessable Content";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 505: return "HTTP Version Not Supported";
      default: return "Unknown";
    }
}

std::string
HttpResponse::serializeHead() const
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       (reason.empty() ? statusReason(status)
                                       : reason.c_str());
    head += "\r\n";
    for (const auto &[k, v] : headers)
        head += k + ": " + v + "\r\n";
    head += "\r\n";
    return head;
}

std::string
HttpResponse::serialize() const
{
    HttpResponse withLength = *this;
    if (!withLength.header("Content-Length") &&
        !withLength.header("Transfer-Encoding"))
        withLength.setHeader("Content-Length",
                             std::to_string(body.size()));
    std::string text = withLength.serializeHead();
    text += body;
    return text;
}

HttpResponse
jsonResponse(int status, const std::string &jsonText)
{
    HttpResponse r;
    r.status = status;
    r.setHeader("Content-Type", "application/json");
    r.body = jsonText;
    if (r.body.empty() || r.body.back() != '\n')
        r.body += '\n';
    return r;
}

HttpParser::HttpParser(Kind kind, HttpLimits limits)
    : kind_(kind), limits_(limits)
{
}

void
HttpParser::reset()
{
    state_ = State::StartLine;
    error_.clear();
    errorStatus_ = 400;
    line_.clear();
    headerBytes_ = 0;
    bodyRemaining_ = 0;
    trailerLines_ = 0;
    sawContentLength_ = false;
    chunked_ = false;
    request_ = HttpRequest();
    responseStatus_ = 0;
}

bool
HttpParser::fail(int status, std::string message)
{
    state_ = State::Error;
    errorStatus_ = status;
    error_ = std::move(message);
    return false;
}

bool
HttpParser::parseTarget()
{
    const std::string &target = request_.target;
    const std::size_t qmark = target.find('?');
    const std::string_view rawPath =
        std::string_view(target).substr(0, qmark);
    if (!percentDecode(rawPath, request_.path))
        return fail(400, "request target: invalid percent-encoding");
    if (qmark != std::string::npos) {
        std::string_view qs = std::string_view(target).substr(qmark + 1);
        while (!qs.empty()) {
            const std::size_t amp = qs.find('&');
            const std::string_view pair = qs.substr(0, amp);
            qs = amp == std::string_view::npos ? std::string_view()
                                               : qs.substr(amp + 1);
            if (pair.empty())
                continue;
            const std::size_t eq = pair.find('=');
            std::string key, value;
            if (!percentDecode(pair.substr(0, eq), key, true) ||
                (eq != std::string_view::npos &&
                 !percentDecode(pair.substr(eq + 1), value, true)))
                return fail(400, "query string: invalid percent-encoding");
            request_.query.emplace_back(std::move(key), std::move(value));
        }
    }
    return true;
}

bool
HttpParser::parseStartLine(std::string_view line)
{
    if (kind_ == Kind::Response) {
        // status-line: HTTP/1.x SP 3DIGIT SP reason
        if (line.rfind("HTTP/1.", 0) != 0 || line.size() < 12 ||
            line[8] != ' ')
            return fail(400, "malformed status line");
        const int minor = line[7] - '0';
        if (minor != 0 && minor != 1)
            return fail(505, "unsupported HTTP version");
        request_.versionMinor = minor;
        int status = 0;
        for (int i = 9; i < 12; ++i) {
            if (!std::isdigit(static_cast<unsigned char>(line[i])))
                return fail(400, "malformed status code");
            status = status * 10 + (line[i] - '0');
        }
        if (line.size() > 12 && line[12] != ' ')
            return fail(400, "malformed status line");
        responseStatus_ = status;
        request_.keepAlive = minor >= 1;
        return true;
    }

    // request-line: METHOD SP request-target SP HTTP/1.x
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos)
        return fail(400, "malformed request line");
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (!isToken(method))
        return fail(400, "method is not a valid token");
    if (target.empty())
        return fail(400, "empty request target");
    if (version == "HTTP/1.1")
        request_.versionMinor = 1;
    else if (version == "HTTP/1.0")
        request_.versionMinor = 0;
    else if (version.rfind("HTTP/", 0) == 0)
        return fail(505, "unsupported HTTP version \"" +
                             std::string(version) + "\"");
    else
        return fail(400, "malformed request line (missing HTTP version)");
    request_.method = std::string(method);
    request_.target = std::string(target);
    request_.keepAlive = request_.versionMinor >= 1;
    return parseTarget();
}

bool
HttpParser::parseHeaderLine(std::string_view line)
{
    if (line.front() == ' ' || line.front() == '\t')
        return fail(400, "obsolete header line folding is not supported");
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos)
        return fail(400, "header line without a colon");
    const std::string_view name = line.substr(0, colon);
    if (!isToken(name))
        return fail(400, "header name is not a valid token (whitespace "
                         "before the colon?)");
    const std::string_view value = trimmed(line.substr(colon + 1));
    if (request_.headers.size() >= limits_.maxHeaders)
        return fail(431, "too many header fields (limit " +
                             std::to_string(limits_.maxHeaders) + ")");
    request_.headers.emplace_back(std::string(name), std::string(value));
    return true;
}

bool
HttpParser::finishHeaders()
{
    const std::string *te = request_.header("Transfer-Encoding");
    const std::string *cl = request_.header("Content-Length");
    if (te && cl)
        return fail(400, "both Transfer-Encoding and Content-Length "
                         "(request smuggling vector)");
    if (te) {
        if (!iequals(trimmed(*te), "chunked"))
            return fail(501, "unsupported Transfer-Encoding \"" + *te +
                                 "\" (only \"chunked\")");
        chunked_ = true;
    }
    if (cl) {
        // Exactly one Content-Length header with one decimal value.
        int seen = 0;
        for (const auto &[k, v] : request_.headers) {
            (void)v;
            if (iequals(k, "Content-Length"))
                ++seen;
        }
        if (seen > 1)
            return fail(400, "multiple Content-Length headers");
        const std::string_view digits = trimmed(*cl);
        if (digits.empty() ||
            !std::all_of(digits.begin(), digits.end(), [](char c) {
                return std::isdigit(static_cast<unsigned char>(c));
            }))
            return fail(400, "Content-Length is not a decimal number");
        std::size_t length = 0;
        for (const char c : digits) {
            if (length > (limits_.maxBodyBytes + 9) / 10)
                return fail(413, "Content-Length exceeds the body limit");
            length = length * 10 + static_cast<std::size_t>(c - '0');
        }
        if (length > limits_.maxBodyBytes)
            return fail(413, "body of " + std::to_string(length) +
                                 " bytes exceeds the limit of " +
                                 std::to_string(limits_.maxBodyBytes));
        sawContentLength_ = true;
        bodyRemaining_ = length;
    }

    if (const std::string *conn = request_.header("Connection")) {
        if (iequals(trimmed(*conn), "close"))
            request_.keepAlive = false;
        else if (iequals(trimmed(*conn), "keep-alive"))
            request_.keepAlive = true;
    }

    if (chunked_) {
        state_ = State::ChunkSize;
    } else if (bodyRemaining_ > 0) {
        request_.body.reserve(bodyRemaining_);
        state_ = State::FixedBody;
    } else if (kind_ == Kind::Response && !sawContentLength_ &&
               responseStatus_ != 204) {
        // A response with neither framing header would be EOF-delimited;
        // the daemon never sends one and the client refuses to guess.
        return fail(400, "response without Content-Length or chunked "
                         "framing");
    } else {
        state_ = State::Done;
    }
    return true;
}

std::size_t
HttpParser::feed(std::string_view data)
{
    std::size_t consumed = 0;
    while (consumed < data.size() && state_ != State::Done &&
           state_ != State::Error) {
        const std::string_view rest = data.substr(consumed);

        // Body-data states copy in bulk; everything else is line-based.
        if (state_ == State::FixedBody || state_ == State::ChunkData) {
            const std::size_t take =
                std::min(rest.size(), bodyRemaining_);
            request_.body.append(rest.data(), take);
            bodyRemaining_ -= take;
            consumed += take;
            if (bodyRemaining_ == 0)
                state_ = state_ == State::FixedBody ? State::Done
                                                    : State::ChunkDataEnd;
            continue;
        }

        const std::size_t nl = rest.find('\n');
        const std::size_t lineLimit =
            state_ == State::StartLine ? limits_.maxStartLineBytes
                                       : limits_.maxHeaderBytes;
        const auto lineTooLong = [&] {
            fail(431, std::string(state_ == State::StartLine
                                      ? "start line exceeds "
                                      : "header block exceeds ") +
                          std::to_string(lineLimit) + " bytes");
        };
        if (nl == std::string_view::npos) {
            // No full line yet: buffer, but never beyond the limit.
            if (line_.size() + rest.size() > lineLimit) {
                lineTooLong();
                return consumed;
            }
            line_.append(rest);
            consumed += rest.size();
            continue;
        }
        if (line_.size() + nl + 1 > lineLimit) {
            lineTooLong();
            return consumed;
        }
        line_.append(rest.substr(0, nl));
        consumed += nl + 1;
        if (line_.empty() || line_.back() != '\r') {
            fail(400, "bare LF line ending (CRLF required)");
            return consumed;
        }
        line_.pop_back();
        std::string line;
        line.swap(line_);

        switch (state_) {
          case State::StartLine:
            if (line.empty())
                continue; // tolerate leading blank lines (RFC 9112 §2.2)
            if (!parseStartLine(line))
                return consumed;
            state_ = State::Headers;
            break;

          case State::Headers:
            headerBytes_ += line.size() + 2;
            if (headerBytes_ > limits_.maxHeaderBytes) {
                fail(431, "header block exceeds " +
                              std::to_string(limits_.maxHeaderBytes) +
                              " bytes");
                return consumed;
            }
            if (line.empty()) {
                if (!finishHeaders())
                    return consumed;
            } else if (!parseHeaderLine(line)) {
                return consumed;
            }
            break;

          case State::ChunkSize: {
            // chunk-size [;extensions] — size is hex, required.
            const std::string_view sizePart =
                std::string_view(line).substr(0, line.find(';'));
            const std::string_view digits = trimmed(sizePart);
            if (digits.empty()) {
                fail(400, "chunked encoding: empty chunk size");
                return consumed;
            }
            std::size_t size = 0;
            for (const char c : digits) {
                const int d = hexDigit(c);
                if (d < 0) {
                    fail(400, "chunked encoding: invalid chunk size \"" +
                                  std::string(digits) + "\"");
                    return consumed;
                }
                if (size > limits_.maxBodyBytes) {
                    fail(413, "chunked encoding: chunk size exceeds the "
                              "body limit");
                    return consumed;
                }
                size = (size << 4) | static_cast<std::size_t>(d);
            }
            if (request_.body.size() + size > limits_.maxBodyBytes) {
                fail(413, "chunked body exceeds the limit of " +
                              std::to_string(limits_.maxBodyBytes) +
                              " bytes");
                return consumed;
            }
            if (size == 0) {
                state_ = State::ChunkTrailer;
            } else {
                bodyRemaining_ = size;
                state_ = State::ChunkData;
            }
            break;
          }

          case State::ChunkDataEnd:
            if (!line.empty()) {
                fail(400, "chunked encoding: chunk data not followed by "
                          "CRLF");
                return consumed;
            }
            state_ = State::ChunkSize;
            break;

          case State::ChunkTrailer:
            // Trailer fields are accepted syntactically and discarded;
            // the empty line ends the message.
            if (line.empty()) {
                state_ = State::Done;
            } else if (++trailerLines_ > limits_.maxHeaders) {
                fail(431, "too many trailer fields");
                return consumed;
            }
            break;

          case State::FixedBody:
          case State::ChunkData:
          case State::Done:
          case State::Error:
            break; // unreachable: handled before the line scan
        }
    }
    return consumed;
}

} // namespace gemini::net
