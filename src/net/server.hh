/**
 * @file
 * A dependency-free blocking HTTP/1.1 server: one accept thread feeds a
 * fixed pool of connection workers over a queue; each worker owns one
 * connection at a time and serves keep-alive/pipelined requests through
 * the strict bounded HttpParser. No epoll, no timers wheel — the daemon
 * serves tens of clients, not millions of sockets, and blocking threads
 * keep every failure path (slow peer, torn frame, injected fault) a
 * straight line.
 *
 * Handlers answer through a ResponseWriter, either one-shot
 * (send(response)) or as a chunked stream (beginStream / writeChunk /
 * endStream) — the event-watch endpoint streams newline-delimited JSON
 * this way. Write failures (peer gone, injected net.write fault) turn
 * the writer inert and report false so streaming handlers can stop
 * early; the connection is dropped afterwards.
 *
 * Shutdown contract: stop() closes the listen socket (unblocking
 * accept), marks the server stopping — long-lived streaming handlers
 * must poll stopping() — shuts down every active connection socket
 * (unblocking reads), drains the queue, and joins all threads. It is
 * idempotent and also runs from the destructor.
 *
 * Fault-injection sites (see common/fault_injection.hh):
 *   net.accept      an accepted connection is destroyed immediately
 *   net.read        a socket read fails; the connection is dropped
 *   net.write       a socket write fails; the connection is dropped
 *   net.write.<k>   same, but only the k-th write of any connection
 *                   (1-based), for deterministic torn-response tests
 */

#ifndef GEMINI_NET_SERVER_HH
#define GEMINI_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/http.hh"

namespace gemini::net {

struct ServerOptions
{
    std::string bindAddress = "127.0.0.1";
    int port = 0; ///< 0 = ephemeral; see HttpServer::port() once started
    int threads = 4; ///< connection workers (concurrent connections)
    int backlog = 64;
    HttpLimits limits;

    /**
     * Keep-alive patience: a connection idle longer than this between
     * requests is closed. Also the granularity at which blocked reads
     * notice a server shutdown.
     */
    double idleTimeoutSeconds = 30.0;
};

class HttpServer;

/** The handler's reply channel; owned by the connection worker. */
class ResponseWriter
{
  public:
    /** One-shot response. False when the connection is already dead. */
    bool send(const HttpResponse &response);

    /**
     * Start a chunked response (Transfer-Encoding spliced in). The
     * stream owns the connection until endStream(); keep-alive continues
     * afterwards if the request allowed it.
     */
    bool beginStream(HttpResponse head);

    /** One chunk (never empty — empty means end in chunked framing). */
    bool writeChunk(std::string_view data);

    /** Terminal zero-chunk. */
    bool endStream();

    /** A response was (at least partially) written for this request. */
    bool responded() const { return responded_; }

    /** True once a write failed; the stream is inert from then on. */
    bool broken() const { return broken_; }

    /** The owning server is shutting down; streams should end now. */
    bool serverStopping() const;

  private:
    friend class HttpServer;
    ResponseWriter(HttpServer &server, int fd) : server_(server), fd_(fd) {}

    bool writeAll(std::string_view data);

    HttpServer &server_;
    int fd_;
    int writeSerial_ = 0; ///< per-connection write index (fault site .<k>)
    bool responded_ = false;
    bool streaming_ = false;
    bool broken_ = false;
};

using HttpHandler =
    std::function<void(const HttpRequest &, ResponseWriter &)>;

class HttpServer
{
  public:
    explicit HttpServer(HttpHandler handler, ServerOptions options = {});

    /** Stops and joins (see stop()). */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind + listen + spawn threads. False (with message) on failure. */
    bool start(std::string *error = nullptr);

    /** The bound port (after start(); resolves port 0 to the real one). */
    int port() const { return port_; }

    bool started() const { return listenFd_ >= 0 || stopping_; }

    /** Graceful shutdown: unblock and join everything. Idempotent. */
    void stop();

    bool stopping() const
    {
        return stopping_.load(std::memory_order_relaxed);
    }

    /** Connections accepted so far (observability, tests). */
    std::uint64_t connectionsAccepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

  private:
    friend class ResponseWriter;

    void acceptLoop();
    void workerLoop();
    void serveConnection(int fd);

    /** Drop a finished connection from the live-fd set stop() tracks. */
    void unregisterConnection(int fd);

    HttpHandler handler_;
    ServerOptions options_;

    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> accepted_{0};

    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable queueCv_;
    std::deque<int> pending_;     ///< accepted fds awaiting a worker
    std::vector<int> active_;     ///< fds currently owned by workers
};

} // namespace gemini::net

#endif // GEMINI_NET_SERVER_HH
