/**
 * @file
 * Minimal blocking HTTP/1.1 client for the `gemini` CLI's daemon
 * commands (submit/status/result/cancel/watch). One connection per
 * request — the CLI makes a handful of calls, not a million — with the
 * same strict bounded HttpParser the server uses on the other side.
 * stream() additionally decodes a chunked newline-delimited body
 * incrementally, invoking the line callback as events arrive (the
 * `watch` command follows a running job this way).
 */

#ifndef GEMINI_NET_CLIENT_HH
#define GEMINI_NET_CLIENT_HH

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "src/net/http.hh"

namespace gemini::net {

/** "http://host[:port]" -> (host, port). Nullopt + message otherwise. */
std::optional<std::pair<std::string, int>>
parseHttpUrl(const std::string &url, std::string *error = nullptr);

class HttpClient
{
  public:
    HttpClient(std::string host, int port, double timeoutSeconds = 30.0,
               HttpLimits limits = {});

    /**
     * One request/response round trip on a fresh connection. Nullopt
     * with a message on connect/transport/parse failure; HTTP error
     * statuses are returned as responses, not failures.
     */
    std::optional<HttpResponse>
    request(const std::string &method, const std::string &target,
            const std::string &body = "", std::string *error = nullptr);

    /**
     * Issue a GET and deliver the response body line by line as bytes
     * arrive (chunked or fixed-length framing alike). The callback
     * returns false to abandon the stream. On success returns the
     * response status; nullopt + message on transport failure. The
     * trailing line of a body that does not end in '\n' is delivered
     * when the stream ends.
     */
    std::optional<int>
    stream(const std::string &target,
           const std::function<bool(std::string_view line)> &onLine,
           std::string *error = nullptr);

  private:
    int connect(std::string *error) const;

    std::string host_;
    int port_;
    double timeoutSeconds_;
    HttpLimits limits_;
};

} // namespace gemini::net

#endif // GEMINI_NET_CLIENT_HH
