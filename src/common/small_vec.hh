/**
 * @file
 * Small-buffer vector for hot-path fragment storage: the first N elements
 * live inline, so the common case (per-layer flow fragments with a couple
 * dozen links, per-stack DRAM byte tallies) never touches the heap and
 * reads stay on the owner's cache lines. Larger sizes spill to a heap
 * buffer, vector-style. Elements must be trivially copyable and
 * destructible — this is raw storage for PODs, not a general container.
 */

#ifndef GEMINI_COMMON_SMALL_VEC_HH
#define GEMINI_COMMON_SMALL_VEC_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gemini::common {

template <typename T, std::size_t N>
class SmallVec
{
    // std::pair of trivials is not formally trivially copyable (its
    // copy-assignment is user-provided), but element-wise copies below
    // compile to memcpy all the same; require only what the storage
    // model actually needs.
    static_assert(std::is_trivially_copy_constructible_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "SmallVec elements are raw POD storage");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    SmallVec() = default;
    ~SmallVec() { delete[] heap_; }

    SmallVec(const SmallVec &o) { assignRaw(o.data(), o.size_); }
    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o)
            assignRaw(o.data(), o.size_);
        return *this;
    }

    SmallVec(SmallVec &&o) noexcept { moveFrom(o); }
    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            delete[] heap_;
            heap_ = nullptr;
            moveFrom(o);
        }
        return *this;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return heap_ ? cap_ : N; }

    T *data() { return heap_ ? heap_ : inline_; }
    const T *data() const { return heap_ ? heap_ : inline_; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }

    void clear() { size_ = 0; }

    void
    reserve(std::size_t n)
    {
        if (n > capacity())
            grow(n);
    }

    /** Size to `n` copies of `v`, discarding previous contents. */
    void
    assign(std::size_t n, const T &v)
    {
        reserve(n);
        T *d = data();
        for (std::size_t i = 0; i < n; ++i)
            d[i] = v;
        size_ = n;
    }

    void
    push_back(const T &v)
    {
        if (size_ == capacity())
            grow(size_ + 1);
        data()[size_++] = v;
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity())
            grow(size_ + 1);
        T *slot = data() + size_++;
        *slot = T(std::forward<Args>(args)...);
        return *slot;
    }

    bool
    operator==(const SmallVec &o) const
    {
        if (size_ != o.size_)
            return false;
        const T *a = data(), *b = o.data();
        for (std::size_t i = 0; i < size_; ++i)
            if (!(a[i] == b[i]))
                return false;
        return true;
    }

  private:
    void
    assignRaw(const T *src, std::size_t n)
    {
        reserve(n);
        T *d = data();
        for (std::size_t i = 0; i < n; ++i)
            d[i] = src[i];
        size_ = n;
    }

    void
    moveFrom(SmallVec &o) noexcept
    {
        heap_ = o.heap_;
        cap_ = o.cap_;
        size_ = o.size_;
        if (heap_ == nullptr)
            for (std::size_t i = 0; i < size_; ++i)
                inline_[i] = o.inline_[i];
        o.heap_ = nullptr;
        o.size_ = 0;
    }

    void
    grow(std::size_t need)
    {
        std::size_t cap = capacity();
        while (cap < need)
            cap *= 2;
        T *fresh = new T[cap];
        const T *src = data();
        for (std::size_t i = 0; i < size_; ++i)
            fresh[i] = src[i];
        delete[] heap_;
        heap_ = fresh;
        cap_ = cap;
    }

    T inline_[N];
    T *heap_ = nullptr;
    std::size_t cap_ = 0; ///< heap capacity; inline capacity is N
    std::size_t size_ = 0;
};

} // namespace gemini::common

#endif // GEMINI_COMMON_SMALL_VEC_HH
