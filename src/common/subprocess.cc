#include "src/common/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/logging.hh"

namespace gemini::common {

namespace {

/**
 * A write to a worker that died mid-request must surface as EPIPE (the
 * supervisor's retry path), not as a process-killing SIGPIPE. Installed
 * once, before the first spawn.
 */
void
ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Write all of `data`, retrying short writes and EINTR. */
bool
writeAll(int fd, const char *data, std::size_t len, std::string *error)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = errnoString("write");
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

double
secondsLeft(std::chrono::steady_clock::time_point deadline)
{
    return std::chrono::duration<double>(deadline -
                                         std::chrono::steady_clock::now())
        .count();
}

/**
 * Read exactly `len` bytes before `deadline` (blocking forever when
 * `forever`). Uses poll() slices so a stalled peer cannot wedge the
 * caller past its deadline.
 */
FrameStatus
readExact(int fd, char *out, std::size_t len, bool forever,
          std::chrono::steady_clock::time_point deadline, std::string *error)
{
    std::size_t off = 0;
    while (off < len) {
        int timeout_ms = -1;
        if (!forever) {
            const double left = secondsLeft(deadline);
            if (left <= 0.0)
                return FrameStatus::Timeout;
            timeout_ms = static_cast<int>(left * 1000.0) + 1;
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = errnoString("poll");
            return FrameStatus::Error;
        }
        if (pr == 0)
            return FrameStatus::Timeout;
        const ssize_t n = ::read(fd, out + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = errnoString("read");
            return FrameStatus::Error;
        }
        if (n == 0)
            return FrameStatus::Eof;
        off += static_cast<std::size_t>(n);
    }
    return FrameStatus::Ok;
}

} // namespace

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::Timeout:
        return "timeout";
      case FrameStatus::Oversized:
        return "oversized";
      case FrameStatus::Error:
        return "error";
    }
    return "unknown";
}

bool
writeFrame(int fd, std::string_view payload, std::string *error)
{
    ignoreSigpipeOnce();
    const auto len = static_cast<std::uint32_t>(payload.size());
    char header[4];
    header[0] = static_cast<char>(len & 0xFF);
    header[1] = static_cast<char>((len >> 8) & 0xFF);
    header[2] = static_cast<char>((len >> 16) & 0xFF);
    header[3] = static_cast<char>((len >> 24) & 0xFF);
    return writeAll(fd, header, sizeof(header), error) &&
           writeAll(fd, payload.data(), payload.size(), error);
}

FrameStatus
readFrame(int fd, std::string &payload, double timeout_seconds,
          std::uint32_t max_bytes, std::string *error)
{
    const bool forever = timeout_seconds < 0.0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(forever ? 0.0 : timeout_seconds));

    char header[4];
    FrameStatus st =
        readExact(fd, header, sizeof(header), forever, deadline, error);
    if (st != FrameStatus::Ok)
        return st;
    const std::uint32_t len =
        static_cast<std::uint32_t>(static_cast<unsigned char>(header[0])) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
         << 8) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
         << 24);
    if (len > max_bytes)
        return FrameStatus::Oversized;
    payload.resize(len);
    if (len == 0)
        return FrameStatus::Ok;
    return readExact(fd, payload.data(), len, forever, deadline, error);
}

Subprocess::~Subprocess()
{
    if (running())
        kill();
    if (pid_ > 0 && !reaped_)
        wait();
    closeFds();
}

void
Subprocess::closeFds()
{
    if (stdin_ >= 0) {
        ::close(stdin_);
        stdin_ = -1;
    }
    if (stdout_ >= 0) {
        ::close(stdout_);
        stdout_ = -1;
    }
}

bool
Subprocess::spawn(const std::vector<std::string> &argv, std::string *error)
{
    GEMINI_ASSERT(pid_ < 0, "Subprocess::spawn called twice");
    if (argv.empty()) {
        if (error)
            *error = "empty argv";
        return false;
    }
    ignoreSigpipeOnce();

    int to_child[2] = {-1, -1};   // parent writes [1], child reads [0]
    int from_child[2] = {-1, -1}; // child writes [1], parent reads [0]
    if (::pipe(to_child) != 0) {
        if (error)
            *error = errnoString("pipe");
        return false;
    }
    if (::pipe(from_child) != 0) {
        if (error)
            *error = errnoString("pipe");
        ::close(to_child[0]);
        ::close(to_child[1]);
        return false;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = errnoString("fork");
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        return false;
    }

    if (pid == 0) {
        // Child: protocol on stdin/stdout, stderr inherited.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        std::vector<char *> cargv;
        cargv.reserve(argv.size() + 1);
        for (const std::string &a : argv)
            cargv.push_back(const_cast<char *>(a.c_str()));
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        // exec failed: die loudly; the parent's handshake sees EOF.
        std::fprintf(stderr, "[worker] exec %s failed: %s\n", cargv[0],
                     std::strerror(errno));
        ::_exit(127);
    }

    // Parent: keep only our ends; mark the request pipe close-on-exec so
    // sibling workers spawned later cannot hold it open (a leaked write
    // end would mask a dead supervisor from the worker's EOF check).
    ::close(to_child[0]);
    ::close(from_child[1]);
    ::fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(from_child[0], F_SETFD, FD_CLOEXEC);
    pid_ = pid;
    stdin_ = to_child[1];
    stdout_ = from_child[0];
    reaped_ = false;
    status_ = -1;
    return true;
}

bool
Subprocess::running()
{
    if (pid_ <= 0 || reaped_)
        return false;
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == pid_) {
        reaped_ = true;
        status_ = status;
        return false;
    }
    return r == 0;
}

void
Subprocess::kill(int sig)
{
    if (pid_ > 0 && !reaped_)
        ::kill(pid_, sig);
}

int
Subprocess::wait()
{
    if (pid_ <= 0)
        return -1;
    if (!reaped_) {
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(pid_, &status, 0);
        } while (r < 0 && errno == EINTR);
        if (r == pid_) {
            reaped_ = true;
            status_ = status;
        }
    }
    return status_;
}

void
Subprocess::closeStdin()
{
    if (stdin_ >= 0) {
        ::close(stdin_);
        stdin_ = -1;
    }
}

long
processRssMiB(pid_t pid)
{
#if defined(__linux__)
    const std::string path = "/proc/" + std::to_string(pid) + "/status";
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return -1;
    long rss_kib = -1;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "VmRSS:", 6) == 0) {
            rss_kib = std::strtol(line + 6, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return rss_kib >= 0 ? rss_kib / 1024 : -1;
#else
    (void)pid;
    return -1;
#endif
}

std::string
selfExePath()
{
#if defined(__linux__)
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return std::string(buf);
#else
    return "";
#endif
}

} // namespace gemini::common
