#include "src/common/fault_injection.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/logging.hh"

namespace gemini::common::fault {

namespace detail {

std::atomic<bool> g_armed{true};

namespace {

/** One armed site: fire on the Nth hit, optionally on every later one. */
struct Rule
{
    int nth = 1;        // 1-based hit number that fires
    bool sticky = true; // fire on every hit >= nth
};

struct State
{
    std::mutex mu;
    bool envLoaded = false;
    std::map<std::string, Rule, std::less<>> rules;
    std::map<std::string, int, std::less<>> hits;
};

State &
state()
{
    static State s;
    return s;
}

/**
 * Parse "site", "site=N" or "site=N+" into (name, rule); false (with a
 * warning) on malformed input so a typo in GEMINI_FAULT_INJECT can't
 * silently disarm a CI run.
 */
bool
parseEntry(const std::string &entry, std::string &name, Rule &rule)
{
    const std::size_t eq = entry.find('=');
    name = entry.substr(0, eq);
    rule = Rule{};
    if (name.empty()) {
        GEMINI_WARN("fault inject: empty site name in \"", entry, "\"");
        return false;
    }
    if (eq == std::string::npos)
        return true; // bare site: every hit fails (nth=1, sticky)
    std::string count = entry.substr(eq + 1);
    rule.sticky = false;
    if (!count.empty() && count.back() == '+') {
        rule.sticky = true;
        count.pop_back();
    }
    char *end = nullptr;
    const long n = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || *end != '\0' || n < 1) {
        GEMINI_WARN("fault inject: bad hit count in \"", entry,
                    "\" (want site, site=N or site=N+)");
        return false;
    }
    rule.nth = static_cast<int>(n);
    return true;
}

/** Install `spec` as the full rule set; counters restart from zero. */
void
configureLocked(State &s, const std::string &spec)
{
    s.rules.clear();
    s.hits.clear();
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t comma = spec.find(',', begin);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(begin, comma - begin);
        begin = comma + 1;
        if (entry.empty())
            continue;
        std::string name;
        Rule rule;
        if (parseEntry(entry, name, rule))
            s.rules[name] = rule;
    }
    g_armed.store(!s.rules.empty(), std::memory_order_relaxed);
}

/** First-use load of GEMINI_FAULT_INJECT (once; configure() overrides). */
void
loadEnvLocked(State &s)
{
    if (s.envLoaded)
        return;
    s.envLoaded = true;
    if (const char *env = std::getenv("GEMINI_FAULT_INJECT"))
        configureLocked(s, env);
    g_armed.store(!s.rules.empty(), std::memory_order_relaxed);
}

} // namespace

bool
shouldFailSlow(std::string_view site)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    loadEnvLocked(s);
    const auto it = s.rules.find(site);
    if (it == s.rules.end())
        return false;
    const int hit = ++s.hits[std::string(site)];
    const Rule &rule = it->second;
    return rule.sticky ? hit >= rule.nth : hit == rule.nth;
}

} // namespace detail

void
configure(const std::string &spec)
{
    detail::State &s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.envLoaded = true; // explicit config wins over the environment
    detail::configureLocked(s, spec);
}

void
reset()
{
    configure("");
}

int
hitCount(std::string_view site)
{
    detail::State &s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.hits.find(site);
    return it == s.hits.end() ? 0 : it->second;
}

} // namespace gemini::common::fault
