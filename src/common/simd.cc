#include "src/common/simd.hh"

#include <cstdlib>
#include <cstring>

namespace gemini::common {

namespace {

bool
disabledByEnv()
{
    const char *env = std::getenv("GEMINI_DISABLE_SIMD");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

SimdLevel
detectHardware()
{
#if defined(__x86_64__) || defined(_M_X64)
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

SimdLevel &
activeRef()
{
    static SimdLevel level = disabledByEnv() ? SimdLevel::Scalar
                                             : detectHardware();
    return level;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Scalar:
        break;
    }
    return "scalar";
}

SimdLevel
detectedSimdLevel()
{
    static const SimdLevel level = detectHardware();
    return level;
}

SimdLevel
activeSimdLevel()
{
    return activeRef();
}

bool
forceSimdLevel(SimdLevel level)
{
    if (level == SimdLevel::Avx2 &&
        detectedSimdLevel() != SimdLevel::Avx2)
        return false;
    activeRef() = level;
    return true;
}

} // namespace gemini::common
