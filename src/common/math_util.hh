/**
 * @file
 * Integer and combinatorial math helpers used throughout the framework:
 * divisor enumeration, 4-way factorizations for ofmap partitions, ceil-div,
 * log-domain binomials for the optimization-space size, and the integer
 * partition function used for the Tangram-space comparison.
 */

#ifndef GEMINI_COMMON_MATH_UTIL_HH
#define GEMINI_COMMON_MATH_UTIL_HH

#include <array>
#include <cstdint>
#include <vector>

namespace gemini {

/** Ceiling division for positive integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round x up to the next multiple of m (m > 0). */
template <typename T>
constexpr T
roundUp(T x, T m)
{
    return ceilDiv(x, m) * m;
}

/** All positive divisors of n in ascending order. */
std::vector<std::int64_t> divisorsOf(std::int64_t n);

/**
 * A 4-way ordered factorization (h, w, b, k) with h*w*b*k == n.
 * Used for the Partition attribute of the LP SPM encoding.
 */
using Factor4 = std::array<std::int64_t, 4>;

/**
 * Enumerate every ordered factorization of n into four positive factors
 * subject to per-dimension upper bounds (caps[i] >= 1).
 *
 * @param n     product that the four factors must reach
 * @param caps  inclusive upper bound per dimension (e.g. ofmap dims)
 * @return      all valid factorizations; empty if none satisfy the caps
 */
std::vector<Factor4> factorizations4(std::int64_t n, const Factor4 &caps);

/**
 * Count (without materializing) the valid 4-way factorizations of n
 * under the given caps.
 */
std::int64_t countFactorizations4(std::int64_t n, const Factor4 &caps);

/** log10 of n! via lgamma. */
double log10Factorial(std::int64_t n);

/** log10 of the binomial coefficient C(n, k); -inf if k<0 or k>n. */
double log10Binomial(std::int64_t n, std::int64_t k);

/** log10(a + b) given log10(a) and log10(b), handling -inf. */
double log10Add(double log_a, double log_b);

/**
 * Integer partition function p(n): the number of multisets of positive
 * integers summing to n. Used for the Tangram optimization-space bound
 * N * p(M) (Sec. IV-B). Computed with the Euler DP; n up to a few
 * thousand is instantaneous.
 */
double partitionFunction(int n);

/**
 * Split `total` into `parts` approximately equal chunks the way the paper's
 * Partition attribute does: the first (total % parts) chunks get
 * ceil(total/parts) and the rest floor(total/parts).
 *
 * @return pair {offset, length} for chunk `idx` (0-based).
 */
struct ChunkRange
{
    std::int64_t offset;
    std::int64_t length;
};
ChunkRange chunkOf(std::int64_t total, std::int64_t parts, std::int64_t idx);

} // namespace gemini

#endif // GEMINI_COMMON_MATH_UTIL_HH
