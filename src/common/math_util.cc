#include "src/common/math_util.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.hh"

namespace gemini {

std::vector<std::int64_t>
divisorsOf(std::int64_t n)
{
    GEMINI_ASSERT(n > 0, "divisorsOf requires n>0, got ", n);
    std::vector<std::int64_t> small, large;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                large.push_back(n / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

std::vector<Factor4>
factorizations4(std::int64_t n, const Factor4 &caps)
{
    GEMINI_ASSERT(n > 0, "factorizations4 requires n>0, got ", n);
    std::vector<Factor4> out;
    for (std::int64_t h : divisorsOf(n)) {
        if (h > caps[0])
            continue;
        const std::int64_t n1 = n / h;
        for (std::int64_t w : divisorsOf(n1)) {
            if (w > caps[1])
                continue;
            const std::int64_t n2 = n1 / w;
            for (std::int64_t b : divisorsOf(n2)) {
                if (b > caps[2])
                    continue;
                const std::int64_t k = n2 / b;
                if (k > caps[3])
                    continue;
                out.push_back({h, w, b, k});
            }
        }
    }
    return out;
}

std::int64_t
countFactorizations4(std::int64_t n, const Factor4 &caps)
{
    std::int64_t count = 0;
    for (std::int64_t h : divisorsOf(n)) {
        if (h > caps[0])
            continue;
        const std::int64_t n1 = n / h;
        for (std::int64_t w : divisorsOf(n1)) {
            if (w > caps[1])
                continue;
            const std::int64_t n2 = n1 / w;
            for (std::int64_t b : divisorsOf(n2)) {
                if (b > caps[2])
                    continue;
                if (n2 / b <= caps[3])
                    ++count;
            }
        }
    }
    return count;
}

double
log10Factorial(std::int64_t n)
{
    GEMINI_ASSERT(n >= 0, "log10Factorial requires n>=0");
    return std::lgamma(static_cast<double>(n) + 1.0) / std::log(10.0);
}

double
log10Binomial(std::int64_t n, std::int64_t k)
{
    if (k < 0 || k > n)
        return -std::numeric_limits<double>::infinity();
    return log10Factorial(n) - log10Factorial(k) - log10Factorial(n - k);
}

double
log10Add(double log_a, double log_b)
{
    if (std::isinf(log_a) && log_a < 0)
        return log_b;
    if (std::isinf(log_b) && log_b < 0)
        return log_a;
    const double hi = std::max(log_a, log_b);
    const double lo = std::min(log_a, log_b);
    return hi + std::log10(1.0 + std::pow(10.0, lo - hi));
}

double
partitionFunction(int n)
{
    GEMINI_ASSERT(n >= 0, "partitionFunction requires n>=0");
    // Classic O(n^2) DP: p[i][j] = partitions of i with parts <= j, folded
    // into a 1-D table by iterating part sizes outermost. Uses double since
    // p(n) overflows int64 near n=400 and we only need magnitudes.
    std::vector<double> p(static_cast<std::size_t>(n) + 1, 0.0);
    p[0] = 1.0;
    for (int part = 1; part <= n; ++part)
        for (int total = part; total <= n; ++total)
            p[total] += p[total - part];
    return p[n];
}

ChunkRange
chunkOf(std::int64_t total, std::int64_t parts, std::int64_t idx)
{
    GEMINI_ASSERT(parts > 0 && idx >= 0 && idx < parts,
                  "chunkOf bad parts/idx: ", parts, "/", idx);
    GEMINI_ASSERT(total >= parts, "cannot split ", total, " into ", parts,
                  " non-empty chunks");
    const std::int64_t base = total / parts;
    const std::int64_t extra = total % parts;
    if (idx < extra)
        return {idx * (base + 1), base + 1};
    return {extra * (base + 1) + (idx - extra) * base, base};
}

} // namespace gemini
