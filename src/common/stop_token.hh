/**
 * @file
 * Cooperative cancellation primitive for the API layer. A StopSource owns
 * the flag; StopTokens are cheap shared handles checked by long-running
 * loops at *coarse* granularity — the DSE scheduler checks once per
 * candidate task and the mapping engine once per SA chain, never inside
 * the SA inner loop (keeping the hot path free of cancellation overhead
 * is a hard perf requirement). Cancellation is one-way: once requested it
 * never resets, so a loop that observed the stop can rely on every later
 * stage observing it too.
 *
 * std::stop_token exists but is tied to std::jthread; this standalone
 * version keeps the DSE/mapping layers free of any threading-model
 * assumption (tokens are also checked from plain thread-pool tasks).
 */

#ifndef GEMINI_COMMON_STOP_TOKEN_HH
#define GEMINI_COMMON_STOP_TOKEN_HH

#include <atomic>
#include <memory>

namespace gemini::common {

class StopSource;

/**
 * Shared cancellation handle. A default-constructed token is detached
 * and never reports stop — option structs can hold one by value with no
 * behavioural change until a source is attached.
 */
class StopToken
{
  public:
    StopToken() = default;

    bool
    stopRequested() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

    /** True when attached to a StopSource (even if not yet stopped). */
    bool attached() const { return flag_ != nullptr; }

  private:
    friend class StopSource;
    explicit StopToken(std::shared_ptr<const std::atomic<bool>> flag)
        : flag_(std::move(flag))
    {
    }

    std::shared_ptr<const std::atomic<bool>> flag_;
};

/** Owner of the cancellation flag. */
class StopSource
{
  public:
    StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    void requestStop() { flag_->store(true, std::memory_order_relaxed); }

    bool stopRequested() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

    StopToken token() const { return StopToken(flag_); }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace gemini::common

#endif // GEMINI_COMMON_STOP_TOKEN_HH
