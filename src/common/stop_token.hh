/**
 * @file
 * Cooperative cancellation primitive for the API layer. A StopSource owns
 * the flag; StopTokens are cheap shared handles checked by long-running
 * loops at *coarse* granularity — the DSE scheduler checks once per
 * candidate task and the mapping engine once per SA chain, never inside
 * the SA inner loop (keeping the hot path free of cancellation overhead
 * is a hard perf requirement). Cancellation is one-way: once requested it
 * never resets, so a loop that observed the stop can rely on every later
 * stage observing it too.
 *
 * std::stop_token exists but is tied to std::jthread; this standalone
 * version keeps the DSE/mapping layers free of any threading-model
 * assumption (tokens are also checked from plain thread-pool tasks).
 *
 * A token may additionally carry a wall-clock *deadline* (withDeadline):
 * past the deadline the token reports stop exactly as if the source had
 * been cancelled, and deadlineExpired() lets callers distinguish "user
 * cancelled" from "ran out of time" — the DSE uses that to flag a
 * best-effort result as `truncated` rather than `cancelled`. The expiry
 * latches on first observation, so every later check agrees (the same
 * one-way guarantee explicit cancellation gives).
 */

#ifndef GEMINI_COMMON_STOP_TOKEN_HH
#define GEMINI_COMMON_STOP_TOKEN_HH

#include <atomic>
#include <chrono>
#include <memory>

#include "src/common/fault_injection.hh"

namespace gemini::common {

class StopSource;

/**
 * Shared cancellation handle. A default-constructed token is detached
 * and never reports stop — option structs can hold one by value with no
 * behavioural change until a source is attached.
 */
class StopToken
{
  public:
    StopToken() = default;

    /** Cancelled by the source OR past the deadline. */
    bool
    stopRequested() const
    {
        return cancelRequested() || deadlineExpired();
    }

    /** Cancelled explicitly via StopSource::requestStop(). */
    bool
    cancelRequested() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

    /**
     * Past the wall-clock deadline (latched: once observed expired it
     * stays expired, even if the clock were to misbehave). The fault
     * site "deadline" forces expiry for the crash/degradation tests.
     */
    bool
    deadlineExpired() const
    {
        if (!deadline_)
            return false;
        if (deadline_->fired.load(std::memory_order_relaxed))
            return true;
        if (std::chrono::steady_clock::now() >= deadline_->at ||
            fault::shouldFail("deadline")) {
            deadline_->fired.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    /**
     * A copy of this token that additionally expires at `at`. The cancel
     * flag stays shared with the original source; the deadline state is
     * shared among all copies of the returned token, so one observation
     * of expiry is visible to every holder.
     */
    StopToken
    withDeadline(std::chrono::steady_clock::time_point at) const
    {
        StopToken t = *this;
        t.deadline_ = std::make_shared<Deadline>();
        t.deadline_->at = at;
        return t;
    }

    /** True when attached to a StopSource (even if not yet stopped). */
    bool attached() const { return flag_ != nullptr; }

    /** True when this token carries a deadline. */
    bool hasDeadline() const { return deadline_ != nullptr; }

  private:
    friend class StopSource;
    explicit StopToken(std::shared_ptr<const std::atomic<bool>> flag)
        : flag_(std::move(flag))
    {
    }

    struct Deadline
    {
        std::chrono::steady_clock::time_point at;
        std::atomic<bool> fired{false};
    };

    std::shared_ptr<const std::atomic<bool>> flag_;
    std::shared_ptr<Deadline> deadline_;
};

/** Owner of the cancellation flag. */
class StopSource
{
  public:
    StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    void requestStop() { flag_->store(true, std::memory_order_relaxed); }

    bool stopRequested() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

    StopToken token() const { return StopToken(flag_); }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace gemini::common

#endif // GEMINI_COMMON_STOP_TOKEN_HH
