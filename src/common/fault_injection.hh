/**
 * @file
 * Site-tagged fault injection for the durability layer. Production code
 * marks its failure-prone operations with named sites ("store.write",
 * "journal.append", "atomic.rename", "deadline", ...); tests and CI arm
 * those sites to fail deterministically, which is how the crash-resume
 * matrix simulates torn writes, full disks and expired deadlines without
 * ever depending on real I/O errors.
 *
 * Configuration comes from the GEMINI_FAULT_INJECT environment variable
 * (read once, at first use) or the configure() test API (which overrides
 * the environment). The syntax is a comma-separated site list:
 *
 *   site        every hit of `site` fails
 *   site=N      only the Nth hit fails (1-based, one-shot)
 *   site=N+     the Nth and every later hit fail (sticky)
 *
 * Cost contract: when nothing is armed, a fault check is one relaxed
 * atomic load — injection points may sit on warm paths (never on the SA
 * inner loop) without measurable overhead.
 */

#ifndef GEMINI_COMMON_FAULT_INJECTION_HH
#define GEMINI_COMMON_FAULT_INJECTION_HH

#include <atomic>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gemini::common::fault {

/** Thrown by throwIfDue() when an armed site fires. */
struct InjectedFault : std::runtime_error
{
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at site \"" + site + "\""),
          site(site)
    {
    }

    std::string site;
};

namespace detail {
// Starts true meaning "possibly armed": the first shouldFail() takes the
// slow path, loads GEMINI_FAULT_INJECT once, and settles the flag. After
// that a disarmed process never touches the lock again.
extern std::atomic<bool> g_armed;
bool shouldFailSlow(std::string_view site);
} // namespace detail

/** True when any site may be armed (env var or configure()). */
inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Count a hit of `site` and report whether it must fail. The counter
 * advances only while injection is armed, so production runs pay nothing
 * and tests see 1-based hit numbers from the moment they configure.
 */
inline bool
shouldFail(std::string_view site)
{
    return armed() && detail::shouldFailSlow(site);
}

/** shouldFail(), but failing by throwing InjectedFault. */
inline void
throwIfDue(std::string_view site)
{
    if (shouldFail(site))
        throw InjectedFault(std::string(site));
}

/**
 * Replace the active configuration (test API; overrides the environment
 * until reset). An empty spec disarms everything. Malformed entries are
 * ignored with a warning rather than aborting the host program.
 */
void configure(const std::string &spec);

/** Disarm every site and zero all hit counters. */
void reset();

/** Hits recorded at `site` since the last configure()/reset(). */
int hitCount(std::string_view site);

} // namespace gemini::common::fault

#endif // GEMINI_COMMON_FAULT_INJECTION_HH
