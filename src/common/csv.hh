/**
 * @file
 * Minimal CSV writer used by the benchmark harnesses to export figure data
 * (e.g. Fig. 6 scatter series and Fig. 9 heatmaps).
 */

#ifndef GEMINI_COMMON_CSV_HH
#define GEMINI_COMMON_CSV_HH

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gemini {

/**
 * Buffered CSV table: collect rows in memory, then write to a file or
 * stream. Values are stringified on insertion.
 */
class CsvTable
{
  public:
    /** Create a table with the given column headers. */
    explicit CsvTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls append cells to it. */
    void beginRow();

    /** Append one cell to the current row. */
    template <typename T>
    void
    add(const T &value)
    {
        std::ostringstream oss;
        oss << value;
        current_.push_back(oss.str());
    }

    /** Convenience: append a whole row of streamable values. */
    template <typename... Ts>
    void
    addRow(const Ts &...values)
    {
        beginRow();
        (add(values), ...);
    }

    /** Number of completed + in-progress rows. */
    std::size_t rowCount() const;

    /** Serialize (headers + rows) as CSV text. */
    std::string toString() const;

    /** Write the CSV to a file; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    void flushCurrent() const;

    std::vector<std::string> headers_;
    mutable std::vector<std::vector<std::string>> rows_;
    mutable std::vector<std::string> current_;
};

} // namespace gemini

#endif // GEMINI_COMMON_CSV_HH
