/**
 * @file
 * Runtime SIMD dispatch policy for the evaluation kernels
 * (src/mapping/kernels.hh). The hot-path kernels ship in two always-built
 * variants — portable scalar and AVX2 — and every build selects between
 * them at runtime from cpuid, so one binary runs correctly on any x86-64
 * host (and on non-x86 the scalar variant is the only one compiled in).
 *
 * The two variants are bit-identical by construction: vector lanes are
 * only used for operations whose IEEE-754 result does not depend on
 * evaluation order or grouping (elementwise add/divide, max with the
 * exact comparison semantics of the scalar fold, integer index math).
 * The differential fuzz suite (tests/test_delta_eval.cc) runs the same
 * walks under both dispatches and asserts bit-equality end to end.
 *
 * Environment override: GEMINI_DISABLE_SIMD (set to anything but "0")
 * forces the scalar variant — the CI scalar leg and A/B debugging both
 * use it. Tests can switch in-process via forceSimdLevel().
 */

#ifndef GEMINI_COMMON_SIMD_HH
#define GEMINI_COMMON_SIMD_HH

namespace gemini::common {

/** Kernel variant the dispatcher can select. */
enum class SimdLevel
{
    Scalar, ///< portable reference implementation
    Avx2,   ///< 4-lane double / 256-bit integer kernels
};

/** Human-readable variant name ("scalar", "avx2") for stats output. */
const char *simdLevelName(SimdLevel level);

/**
 * Highest variant this host supports, before any override: Avx2 when
 * cpuid reports AVX2, else Scalar. Never consults the environment.
 */
SimdLevel detectedSimdLevel();

/**
 * The variant the kernels currently dispatch to. Resolved once on first
 * use: detectedSimdLevel() clamped by GEMINI_DISABLE_SIMD. Subsequent
 * forceSimdLevel() calls change it process-wide.
 */
SimdLevel activeSimdLevel();

/**
 * Force the active variant (tests and benchmarks). Returns false — and
 * changes nothing — when the host cannot execute the requested variant
 * (forcing Avx2 on a non-AVX2 machine). Not thread-safe against
 * concurrent kernel dispatch; callers switch levels only around
 * single-threaded sections, as the fuzz tests do.
 */
bool forceSimdLevel(SimdLevel level);

} // namespace gemini::common

#endif // GEMINI_COMMON_SIMD_HH
