/**
 * @file
 * Dependency-free JSON for the public API layer: a small value type, a
 * strict parser with line/column error messages, compact and pretty
 * serialization, and a *canonical* form (sorted object keys, shortest
 * round-trip number formatting, no whitespace) used to content-hash
 * ExperimentSpecs — two specs that describe the same experiment hash
 * identically regardless of key order or formatting.
 *
 * Scope: RFC 8259 minus arbitrary-precision numbers (values are doubles;
 * integers up to 2^53 survive exactly, which covers every knob in the
 * spec schema). Object key order is preserved on parse so dumped specs
 * stay human-diffable; only canonical() sorts.
 */

#ifndef GEMINI_COMMON_JSON_HH
#define GEMINI_COMMON_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gemini::common::json {

class Value;

/** JSON array. */
using Array = std::vector<Value>;

/**
 * JSON object as an insertion-ordered key/value list (specs have a dozen
 * keys — linear lookup beats a map, and order-preservation keeps dumps
 * diffable against the source file).
 */
using Object = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Value() : data_(nullptr) {}
    Value(std::nullptr_t) : data_(nullptr) {}
    Value(bool b) : data_(b) {}
    Value(double d) : data_(d) {}
    Value(int i) : data_(static_cast<double>(i)) {}
    Value(unsigned i) : data_(static_cast<double>(i)) {}
    Value(std::int64_t i) : data_(static_cast<double>(i)) {}
    Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
    Value(const char *s) : data_(std::string(s)) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(Array a) : data_(std::move(a)) {}
    Value(Object o) : data_(std::move(o)) {}

    /** Fresh empty containers (clearer than Value(Array{}) at call sites). */
    static Value array() { return Value(Array{}); }
    static Value object() { return Value(Object{}); }

    Type
    type() const
    {
        return static_cast<Type>(data_.index());
    }

    bool isNull() const { return type() == Type::Null; }
    bool isBool() const { return type() == Type::Bool; }
    bool isNumber() const { return type() == Type::Number; }
    bool isString() const { return type() == Type::String; }
    bool isArray() const { return type() == Type::Array; }
    bool isObject() const { return type() == Type::Object; }

    /** Accessors assume the matching type (callers check first). */
    bool asBool() const { return std::get<bool>(data_); }
    double asNumber() const { return std::get<double>(data_); }
    const std::string &asString() const { return std::get<std::string>(data_); }
    const Array &asArray() const { return std::get<Array>(data_); }
    Array &asArray() { return std::get<Array>(data_); }
    const Object &asObject() const { return std::get<Object>(data_); }
    Object &asObject() { return std::get<Object>(data_); }

    /** Object lookup; nullptr when absent (or not an object). */
    const Value *find(std::string_view key) const;

    /** Object insert-or-replace; returns the stored value. */
    Value &set(std::string_view key, Value v);

    /** Array append. */
    void
    push(Value v)
    {
        asArray().push_back(std::move(v));
    }

    /**
     * Serialize. indent < 0 is compact (no whitespace); indent >= 0
     * pretty-prints with that many spaces per level. Numbers use the
     * shortest representation that round-trips (std::to_chars).
     */
    std::string dump(int indent = -1) const;

    /**
     * Canonical serialization: compact, object keys sorted bytewise,
     * shortest round-trip numbers. The input to content hashing.
     */
    std::string canonical() const;

    bool operator==(const Value &o) const { return data_ == o.data_; }

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        data_;
};

/**
 * Parse a complete JSON document. Trailing non-whitespace, duplicate
 * object keys, and nesting beyond 256 levels are errors. On failure
 * returns nullopt and, when `error` is non-null, stores a
 * "line L, column C: reason" message.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *error = nullptr);

/** FNV-1a 64-bit hash (content hashing of canonical spec text). */
std::uint64_t fnv1a64(std::string_view s);

} // namespace gemini::common::json

#endif // GEMINI_COMMON_JSON_HH
