/**
 * @file
 * Crash-safe file publication: write to a temp file in the destination
 * directory, flush to stable storage, then rename over the target. A
 * reader (or a process restarted after a crash) sees either the complete
 * old contents or the complete new contents — never a truncated or
 * interleaved file. Every artifact the explorer persists (store records,
 * result.json, CSV ledgers) publishes through here; the write-ahead rung
 * journal is the one deliberate exception (it appends, see dse/journal).
 */

#ifndef GEMINI_COMMON_FS_ATOMIC_HH
#define GEMINI_COMMON_FS_ATOMIC_HH

#include <string>

namespace gemini::common {

/**
 * Atomically replace `path` with `content`. On failure returns false and,
 * when `error` is non-null, fills it with an actionable message (which
 * syscall failed, on which file, and the errno text — an ENOSPC reads as
 * "no space left on device", not as a silently short file). The temp file
 * is cleaned up on every failure path.
 *
 * Fault-injection sites: "atomic.write" (temp-file write/flush) and
 * "atomic.rename" (the publish rename).
 */
bool writeFileAtomic(const std::string &path, const std::string &content,
                     std::string *error = nullptr);

} // namespace gemini::common

#endif // GEMINI_COMMON_FS_ATOMIC_HH
