#include "src/common/json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gemini::common::json {

const Value *
Value::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : asObject())
        if (k == key)
            return &v;
    return nullptr;
}

Value &
Value::set(std::string_view key, Value v)
{
    Object &obj = asObject();
    for (auto &[k, existing] : obj) {
        if (k == key) {
            existing = std::move(v);
            return existing;
        }
    }
    obj.emplace_back(std::string(key), std::move(v));
    return obj.back().second;
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/**
 * Shortest round-trip formatting via std::to_chars. Non-finite values
 * have no JSON spelling; they serialize as null (the API layer never
 * emits them — DSE infinities are normalized before export).
 */
void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, d);
    out.append(buf, res.ptr);
}

struct DumpOptions
{
    int indent = -1;   ///< <0 compact
    bool sortKeys = false;
};

void
dumpValue(std::string &out, const Value &v, const DumpOptions &opts,
          int depth)
{
    const bool pretty = opts.indent >= 0;
    const auto newline = [&](int d) {
        if (!pretty)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(d) *
                       static_cast<std::size_t>(opts.indent),
                   ' ');
    };

    switch (v.type()) {
      case Value::Type::Null:
        out += "null";
        break;
      case Value::Type::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Value::Type::Number:
        appendNumber(out, v.asNumber());
        break;
      case Value::Type::String:
        appendEscaped(out, v.asString());
        break;
      case Value::Type::Array: {
        const Array &a = v.asArray();
        if (a.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            dumpValue(out, a[i], opts, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
      }
      case Value::Type::Object: {
        const Object &o = v.asObject();
        if (o.empty()) {
            out += "{}";
            break;
        }
        // Sorting for the canonical form walks an index permutation so
        // the object itself stays untouched.
        std::vector<std::size_t> order(o.size());
        for (std::size_t i = 0; i < o.size(); ++i)
            order[i] = i;
        if (opts.sortKeys)
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return o[a].first < o[b].first;
                      });
        out.push_back('{');
        for (std::size_t i = 0; i < order.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            appendEscaped(out, o[order[i]].first);
            out.push_back(':');
            if (pretty)
                out.push_back(' ');
            dumpValue(out, o[order[i]].second, opts, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
      }
    }
}

class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<Value>
    parseDocument()
    {
        skipWs();
        Value v;
        if (!parseValue(v, 0))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after the JSON value");
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr int kMaxDepth = 256;

    bool
    fail(const std::string &reason)
    {
        if (error_ && error_->empty()) {
            // Recompute line/column from the byte offset (errors are
            // rare; the happy path never pays for tracking).
            std::size_t line = 1, col = 1;
            for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
                if (text_[i] == '\n') {
                    ++line;
                    col = 1;
                } else {
                    ++col;
                }
            }
            *error_ = "line " + std::to_string(line) + ", column " +
                      std::to_string(col) + ": " + reason;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 256 levels");
        if (pos_ >= text_.size())
            return fail("unexpected end of input, expected a value");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
          }
          case 't':
            if (parseLiteral("true")) {
                out = Value(true);
                return true;
            }
            return fail("invalid literal, expected 'true'");
          case 'f':
            if (parseLiteral("false")) {
                out = Value(false);
                return true;
            }
            return fail("invalid literal, expected 'false'");
          case 'n':
            if (parseLiteral("null")) {
                out = Value(nullptr);
                return true;
            }
            return fail("invalid literal, expected 'null'");
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail(std::string("unexpected character '") + c + "'");
        }
    }

    bool
    parseNumber(Value &out)
    {
        // Validate the JSON number grammar first: std::from_chars accepts
        // forms JSON forbids (leading '+', hex) and we want its exact
        // shortest-round-trip inverse, not a lax scan.
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        if (consume('0')) {
        } else {
            if (pos_ >= text_.size() || text_[pos_] < '1' ||
                text_[pos_] > '9')
                return fail("invalid number");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (consume('.')) {
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                return fail("digits required after the decimal point");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                return fail("digits required in the exponent");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        double d = 0.0;
        const auto res = std::from_chars(text_.data() + start,
                                         text_.data() + pos_, d);
        if (res.ec != std::errc{} || !std::isfinite(d)) {
            pos_ = start;
            return fail("number out of double range");
        }
        out = Value(d);
        return true;
    }

    bool
    parseHex4(unsigned &cp)
    {
        cp = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("truncated \\u escape");
            const char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("invalid hex digit in \\u escape");
        }
        return true;
    }

    void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        for (;;) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape sequence");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // UTF-16 surrogate pair.
                    if (!consume('\\') || !consume('u'))
                        return fail("unpaired UTF-16 high surrogate");
                    unsigned lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("invalid UTF-16 low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("unpaired UTF-16 low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail(std::string("invalid escape '\\") + e + "'");
            }
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        consume('[');
        Array a;
        skipWs();
        if (consume(']')) {
            out = Value(std::move(a));
            return true;
        }
        for (;;) {
            skipWs();
            Value v;
            if (!parseValue(v, depth + 1))
                return false;
            a.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']')) {
                out = Value(std::move(a));
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        consume('{');
        Object o;
        skipWs();
        if (consume('}')) {
            out = Value(std::move(o));
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto &[k, v] : o)
                if (k == key)
                    return fail("duplicate object key \"" + key + "\"");
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            Value v;
            if (!parseValue(v, depth + 1))
                return false;
            o.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}')) {
                out = Value(std::move(o));
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
Value::dump(int indent) const
{
    std::string out;
    DumpOptions opts;
    opts.indent = indent;
    dumpValue(out, *this, opts, 0);
    return out;
}

std::string
Value::canonical() const
{
    std::string out;
    DumpOptions opts;
    opts.indent = -1;
    opts.sortKeys = true;
    dumpValue(out, *this, opts, 0);
    return out;
}

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).parseDocument();
}

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace gemini::common::json
