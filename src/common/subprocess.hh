/**
 * @file
 * Child-process and pipe-framing utilities for the supervised worker
 * execution mode: spawn a child with piped stdin/stdout, exchange
 * length-prefixed JSON frames with poll()-based timeouts, probe a child's
 * resident-set size, and locate the running executable (so the service
 * can respawn itself in `gemini worker` mode).
 *
 * The frame format is a 4-byte little-endian payload length followed by
 * the payload bytes. Readers enforce a maximum frame size so a corrupt or
 * hostile peer can announce neither a multi-gigabyte allocation nor an
 * endless read; writers ignore SIGPIPE process-wide (installed once, on
 * first spawn) so a dead peer surfaces as EPIPE instead of killing the
 * supervisor.
 */

#ifndef GEMINI_COMMON_SUBPROCESS_HH
#define GEMINI_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace gemini::common {

/** Upper bound a frame reader will accept (announced payload length). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Outcome of one readFrame() call. */
enum class FrameStatus
{
    Ok,        ///< a complete frame was read into the payload
    Eof,       ///< peer closed the pipe (possibly mid-frame: torn)
    Timeout,   ///< deadline expired before a complete frame arrived
    Oversized, ///< announced length exceeds the caller's maximum
    Error      ///< read()/poll() failed (see *error)
};

/** Human-readable name of a FrameStatus (for logs and poison reasons). */
const char *frameStatusName(FrameStatus status);

/**
 * Write one frame (4-byte LE length + payload) to `fd`.
 * @return false on any write error (EPIPE from a dead peer included),
 * with the reason in *error when non-null.
 */
bool writeFrame(int fd, std::string_view payload, std::string *error = nullptr);

/**
 * Read one complete frame from `fd` within `timeout_seconds` (< 0 blocks
 * forever). Partial data past the deadline reports Timeout; the bytes read
 * so far are discarded, so a Timeout poisons the stream — callers must
 * treat the peer as corrupt (kill it), never retry the read.
 */
FrameStatus readFrame(int fd, std::string &payload, double timeout_seconds,
                      std::uint32_t max_bytes = kMaxFrameBytes,
                      std::string *error = nullptr);

/**
 * One spawned child with piped stdin/stdout (stderr is inherited, so
 * worker diagnostics land on the supervisor's stderr). Non-copyable; the
 * destructor SIGKILLs and reaps a still-running child.
 */
class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess();

    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /**
     * fork+exec `argv` (argv[0] is the executable; PATH is searched).
     * Failure to fork or create pipes is reported synchronously; an
     * exec failure surfaces as the child dying instantly (the caller's
     * protocol handshake catches it).
     */
    bool spawn(const std::vector<std::string> &argv, std::string *error);

    /** Child is spawned and not yet reaped as exited. */
    bool running();

    /** Send `sig` (default SIGKILL) to a running child. */
    void kill(int sig = 9);

    /** Blocking reap. @return raw waitpid status, or -1 if none. */
    int wait();

    pid_t pid() const { return pid_; }
    int stdinFd() const { return stdin_; }  ///< write requests here
    int stdoutFd() const { return stdout_; } ///< read responses here

    /** Close the child's stdin (EOF tells a worker to exit cleanly). */
    void closeStdin();

  private:
    void closeFds();

    pid_t pid_ = -1;
    int stdin_ = -1;
    int stdout_ = -1;
    bool reaped_ = false;
    int status_ = -1;
};

/**
 * Resident-set size of `pid` in MiB via /proc (Linux).
 * @return -1 when unknown (non-Linux, or the process is gone).
 */
long processRssMiB(pid_t pid);

/** Absolute path of the running executable ("" when undeterminable). */
std::string selfExePath();

} // namespace gemini::common

#endif // GEMINI_COMMON_SUBPROCESS_HH
