/**
 * @file
 * Fixed-size worker pool used by the DSE driver: architecture candidates are
 * independent, so exploration is a simple parallel-for over the candidate
 * list (the paper runs its DSE on 80-100 threads).
 */

#ifndef GEMINI_COMMON_THREAD_POOL_HH
#define GEMINI_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gemini {

/**
 * A small task-queue thread pool. Tasks are void() callables; waitIdle()
 * blocks until every submitted task has finished.
 *
 * Tasks are exception-safe: a throwing task never terminates its worker
 * thread. The first escaped exception is captured as an exception_ptr —
 * parallelFor() rethrows it to its caller after the loop drains, and
 * callers that submit() directly can collect it with takeTaskError()
 * (the DSE scheduler does its own capture inside its task wrappers and
 * surfaces errors through the service's JobHandle::rethrow()).
 */
class ThreadPool
{
  public:
    /** Start `threads` workers (0 means hardware_concurrency). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Run fn(i) for i in [0, count) across the pool and wait for
     * completion. fn must be safe to call concurrently.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Take (and clear) the first exception that escaped a submitted task
     * since the last take. Null when every task completed cleanly.
     */
    std::exception_ptr takeTaskError();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable idle_;
    std::size_t inFlight_ = 0;
    bool shutdown_ = false;
    std::exception_ptr taskError_; ///< first escaped task exception
};

} // namespace gemini

#endif // GEMINI_COMMON_THREAD_POOL_HH
