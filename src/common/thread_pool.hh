/**
 * @file
 * Fixed-size worker pool used by the DSE driver: architecture candidates are
 * independent, so exploration is a simple parallel-for over the candidate
 * list (the paper runs its DSE on 80-100 threads).
 *
 * The pool is NUMA-topology-aware: node boundaries are read from sysfs
 * (/sys/devices/system/node/node<N>/cpulist), workers are assigned to
 * nodes round-robin and, on multi-node hosts, pinned to their node's CPU set,
 * and every worker owns a node-local bump arena (workerArena()) so
 * candidate evaluations allocate scratch on the socket that reads it.
 * Single-node hosts (and non-Linux builds) skip pinning entirely; the
 * arena and topology accessors still work.
 */

#ifndef GEMINI_COMMON_THREAD_POOL_HH
#define GEMINI_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/arena.hh"

namespace gemini {

/**
 * Parse a Linux cpulist string ("0-3,8,10-11") into sorted CPU ids.
 * Whitespace and a trailing newline are tolerated; malformed ranges are
 * skipped rather than thrown — sysfs is trusted but not depended on.
 */
std::vector<int> parseCpuList(std::string_view text);

/** CPU ids per NUMA node, in node-id order. */
struct NumaTopology
{
    std::vector<std::vector<int>> nodeCpus;

    std::size_t nodeCount() const { return nodeCpus.size(); }

    std::size_t
    cpuCount() const
    {
        std::size_t n = 0;
        for (const auto &node : nodeCpus)
            n += node.size();
        return n;
    }
};

/**
 * Read the host's NUMA topology from sysfs. Hosts without the sysfs
 * node directory (non-Linux, containers with masked sysfs) report one
 * synthetic node holding every CPU — callers never see zero nodes.
 */
NumaTopology detectNumaTopology();

/**
 * A small task-queue thread pool. Tasks are void() callables; waitIdle()
 * blocks until every submitted task has finished.
 *
 * Tasks are exception-safe: a throwing task never terminates its worker
 * thread. The first escaped exception is captured as an exception_ptr —
 * parallelFor() rethrows it to its caller after the loop drains, and
 * callers that submit() directly can collect it with takeTaskError()
 * (the DSE scheduler does its own capture inside its task wrappers and
 * surfaces errors through the service's JobHandle::rethrow()).
 */
class ThreadPool
{
  public:
    struct Options
    {
        /** Worker count; 0 means hardware_concurrency. */
        std::size_t threads = 0;

        /**
         * Pin each worker to its NUMA node's CPU set. Only effective on
         * multi-node hosts — on one node the scheduler already keeps
         * memory local and pinning would just fight it.
         */
        bool pinWorkers = true;

        /** Growth granularity of each worker's node-local arena. */
        std::size_t arenaChunkBytes = 64 * 1024;
    };

    /** Start `threads` workers (0 means hardware_concurrency). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Start workers per `options` (topology detection + pinning). */
    explicit ThreadPool(const Options &options);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Run fn(i) for i in [0, count) across the pool and wait for
     * completion. fn must be safe to call concurrently.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Take (and clear) the first exception that escaped a submitted task
     * since the last take. Null when every task completed cleanly.
     */
    std::exception_ptr takeTaskError();

    /** NUMA nodes the pool detected at construction (>= 1). */
    std::size_t numaNodeCount() const { return topology_.nodeCount(); }

    /** Workers successfully pinned to their node's CPU set. */
    std::size_t pinnedWorkers() const { return pinned_; }

    /** NUMA node worker `w` is assigned to (round-robin). */
    std::size_t
    workerNode(std::size_t w) const
    {
        return w % topology_.nodeCount();
    }

    /**
     * The calling pool worker's node-local scratch arena, or nullptr on
     * threads outside any pool. Tasks reset() it between work items;
     * chunks are first-touched by the pinned worker, so on multi-node
     * hosts the pages land on that worker's node.
     */
    static common::BumpArena *workerArena();

  private:
    void workerLoop(std::size_t worker);
    void start(const Options &options);

    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<common::BumpArena>> arenas_;
    NumaTopology topology_;
    std::size_t pinned_ = 0;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable idle_;
    std::size_t inFlight_ = 0;
    bool shutdown_ = false;
    std::exception_ptr taskError_; ///< first escaped task exception
};

} // namespace gemini

#endif // GEMINI_COMMON_THREAD_POOL_HH
