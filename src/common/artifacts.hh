/**
 * @file
 * Artifact output routing for benches and examples: every harness that
 * writes CSV/JSON result files resolves its destination directory through
 * here instead of dropping bare filenames into the working directory.
 * `--out DIR` (or the GEMINI_OUT_DIR environment variable) selects the
 * directory; it is created on demand. The conventional destination is the
 * CMake build tree — repo-root runs stay clean.
 */

#ifndef GEMINI_COMMON_ARTIFACTS_HH
#define GEMINI_COMMON_ARTIFACTS_HH

#include <string>

namespace gemini::common {

/**
 * Resolve the artifact directory: `--out DIR` from argv wins, then the
 * GEMINI_OUT_DIR environment variable, then `fallback` (default: the
 * current directory). The directory is created if missing. Other argv
 * entries are ignored, so callers with their own flags can pass argv
 * through unchanged.
 */
std::string artifactDir(int argc, char **argv,
                        const std::string &fallback = ".");

/** Join an artifact directory and a file name. */
std::string artifactPath(const std::string &dir, const std::string &file);

} // namespace gemini::common

#endif // GEMINI_COMMON_ARTIFACTS_HH
