/**
 * @file
 * Open-addressing flat hash table keyed by flattened int64 word spans — the
 * shared memoization substrate of the evaluation pipeline (the Analyzer's
 * four fragment caches and the intra-core Explorer memo).
 *
 * Design points, all driven by the SA hot loop (millions of probes per
 * run, exact keys, generational wipes):
 *
 *  - SoA slot metadata (generation stamps, hashes, key refs, value ids):
 *    a probe touches two small parallel arrays, not a node per entry.
 *  - Keys are interned into a bump arena of raw words; equality is a
 *    length check plus a word compare. No per-key heap allocation.
 *  - Values live in a deque so references returned by find()/insert()
 *    stay valid across later inserts (fragment gathering holds pointers
 *    to several cached fragments while inserting more).
 *  - clear() is a generational wipe: the generation counter bumps and
 *    every slot goes stale at once — O(live values) for destruction,
 *    zero slot-array traffic, and all capacity (slots, arena, probe
 *    buffers) is retained, so a wipe-and-refill cycle allocates nothing.
 *  - Growth is opt-in (the Explorer memo grows; the Analyzer caches are
 *    bounded and wiped by their owner). Every buffer growth — slots,
 *    arena — bumps an allocation-event counter so benchmarks can assert
 *    the steady state is allocation-free.
 */

#ifndef GEMINI_COMMON_FLAT_TABLE_HH
#define GEMINI_COMMON_FLAT_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <vector>

#include "src/common/arena.hh"
#include "src/common/logging.hh"

namespace gemini::common {

/** FNV-1a over a word span (the hash every flat-table key uses). */
inline std::uint64_t
hashWords(std::span<const std::int64_t> words)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::int64_t w : words) {
        h ^= static_cast<std::uint64_t>(w);
        h *= 0x100000001B3ull;
    }
    return h;
}

template <typename Value>
class FlatWordTable
{
  public:
    using Words = std::span<const std::int64_t>;

    FlatWordTable() { reserve(0); }

    /**
     * Bound the table to `entries` live entries and pre-size every buffer
     * so inserts up to the bound never reallocate. `words_per_key` sizes
     * the key arena (a hint; the arena grows — and counts the event — if
     * keys run longer). Keeps existing entries.
     */
    void
    reserve(std::size_t entries, std::size_t words_per_key = 24)
    {
        bound_ = entries;
        wordsPerKey_ = words_per_key;
        std::size_t slots = 16;
        while (slots < 2 * (bound_ + 1))
            slots *= 2;
        if (slots > gens_.size())
            rehash(slots);
        arena_.reserve(bound_ * wordsPerKey_);
    }

    /** Live entry bound (insertion past it grows or asserts; see grow). */
    std::size_t capacity() const { return bound_; }
    std::size_t size() const { return size_; }
    bool full() const { return size_ >= bound_; }

    /**
     * Grow instead of asserting when an insert hits the bound. Off by
     * default: the Analyzer caches are bounded and their owner wipes
     * them; the Explorer memo is unbounded and opts in.
     */
    void setGrowable(bool growable) { growable_ = growable; }

    /** Generational wipe: all entries stale at once, capacity retained. */
    void
    clear()
    {
        if (++gen_ == 0) { // stamp wrap: start a fresh epoch
            gens_.fill(0u);
            gen_ = 1;
        }
        size_ = 0;
        arena_.clear(); // keeps capacity
        values_.clear();
    }

    /**
     * Probe for `key`. Returns the value or nullptr; either way `slot`
     * receives the probe's resting position, which insertAt() may reuse
     * *provided no insert or wipe happened in between*.
     */
    Value *
    find(Words key, std::size_t &slot)
    {
        const std::uint64_t h = hashWords(key);
        const std::size_t mask = gens_.size() - 1;
        std::size_t i = static_cast<std::size_t>(h) & mask;
        while (gens_[i] == gen_) {
            if (hashes_[i] == h && keyEquals(i, key)) {
                slot = i;
                return &values_[valIdx_[i]];
            }
            i = (i + 1) & mask;
        }
        slot = i;
        return nullptr;
    }

    Value *
    find(Words key)
    {
        std::size_t slot;
        return find(key, slot);
    }

    /**
     * Insert at the slot a just-failed find() returned. The key is
     * interned; the returned reference stays valid until clear().
     */
    Value &
    insertAt(std::size_t slot, Words key, Value value)
    {
        if (size_ >= bound_) {
            GEMINI_ASSERT(growable_,
                          "flat table over capacity; owner must wipe");
            reserve(bound_ == 0 ? 16 : bound_ * 2, wordsPerKey_);
            ++allocEvents_; // rehash reallocated the slot arrays
            (void)find(key, slot);
        }
        const std::uint64_t h = hashWords(key);
        gens_[slot] = gen_;
        hashes_[slot] = h;
        keyOff_[slot] = static_cast<std::uint32_t>(arena_.size());
        keyLen_[slot] = static_cast<std::uint32_t>(key.size());
        valIdx_[slot] = static_cast<std::uint32_t>(values_.size());
        if (arena_.size() + key.size() > arena_.capacity())
            ++allocEvents_;
        arena_.insert(arena_.end(), key.begin(), key.end());
        values_.push_back(std::move(value));
        ++size_;
        return values_.back();
    }

    /** find-or-fail insert for callers that did not keep the slot. */
    Value &
    insert(Words key, Value value)
    {
        std::size_t slot;
        Value *existing = find(key, slot);
        GEMINI_ASSERT(existing == nullptr, "duplicate flat-table key");
        return insertAt(slot, key, std::move(value));
    }

    /** Visit every live entry as (key words, value), in slot (probe)
     * order — NOT insertion order; callers must be order-insensitive. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = gens_.size();
        for (std::size_t i = 0; i < n; ++i) {
            if (gens_[i] != gen_)
                continue;
            fn(Words{arena_.data() + keyOff_[i], keyLen_[i]},
               values_[valIdx_[i]]);
        }
    }

    /** Buffer-growth events since construction (0 in steady state). */
    std::uint64_t allocEvents() const { return allocEvents_; }

  private:
    bool
    keyEquals(std::size_t slot, Words key) const
    {
        return keyLen_[slot] == key.size() &&
               std::memcmp(arena_.data() + keyOff_[slot], key.data(),
                           key.size() * sizeof(std::int64_t)) == 0;
    }

    void
    rehash(std::size_t slots)
    {
        common::ZeroVec<std::uint32_t> old_gens = std::move(gens_);
        common::ZeroVec<std::uint64_t> old_hashes = std::move(hashes_);
        common::ZeroVec<std::uint32_t> old_off = std::move(keyOff_);
        common::ZeroVec<std::uint32_t> old_len = std::move(keyLen_);
        common::ZeroVec<std::uint32_t> old_val = std::move(valIdx_);

        // Demand-zero metadata: gen_ is never 0 (the wrap handler skips
        // it), so a zero generation stamp is universally stale and the
        // other arrays are only read behind a stamp match — no slot
        // array is written (or faulted in) until a probe lands on it.
        gens_.resizeZero(slots);
        hashes_.resizeZero(slots);
        keyOff_.resizeZero(slots);
        keyLen_.resizeZero(slots);
        valIdx_.resizeZero(slots);

        const std::size_t mask = slots - 1;
        for (std::size_t i = 0; i < old_gens.size(); ++i) {
            if (old_gens[i] != gen_)
                continue;
            std::size_t j =
                static_cast<std::size_t>(old_hashes[i]) & mask;
            while (gens_[j] == gen_)
                j = (j + 1) & mask;
            gens_[j] = gen_;
            hashes_[j] = old_hashes[i];
            keyOff_[j] = old_off[i];
            keyLen_[j] = old_len[i];
            valIdx_[j] = old_val[i];
        }
    }

    std::size_t bound_ = 0;
    std::size_t wordsPerKey_ = 24;
    std::size_t size_ = 0;
    bool growable_ = false;
    std::uint32_t gen_ = 1;
    std::uint64_t allocEvents_ = 0;

    // SoA slot metadata (parallel arrays, power-of-two length). Backed
    // by demand-zero storage so an oversized reservation costs only the
    // pages probes actually touch (see rehash).
    common::ZeroVec<std::uint32_t> gens_;
    common::ZeroVec<std::uint64_t> hashes_;
    common::ZeroVec<std::uint32_t> keyOff_;
    common::ZeroVec<std::uint32_t> keyLen_;
    common::ZeroVec<std::uint32_t> valIdx_;

    std::vector<std::int64_t> arena_; ///< interned key words
    std::deque<Value> values_;        ///< stable value storage
};

} // namespace gemini::common

#endif // GEMINI_COMMON_FLAT_TABLE_HH
