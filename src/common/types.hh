/**
 * @file
 * Fundamental identifier and quantity types shared across the library.
 */

#ifndef GEMINI_COMMON_TYPES_HH
#define GEMINI_COMMON_TYPES_HH

#include <cstdint>

namespace gemini {

/** Index of a computing core inside the global mesh (row-major). */
using CoreId = std::int32_t;

/** Index of a layer inside a dnn::Graph (topological order). */
using LayerId = std::int32_t;

/**
 * DRAM selector used by the Flow-of-Data encoding (Sec. IV-A of the paper).
 *
 * -1 : no explicit management needed (inferred or absent),
 *  0 : interleave evenly across all DRAMs,
 *  d>0: DRAM number d (1-based).
 */
using DramSel = std::int16_t;

/** Value of DramSel meaning "not explicitly managed / absent". */
inline constexpr DramSel kDramUnmanaged = -1;

/** Value of DramSel meaning "interleave over all DRAMs". */
inline constexpr DramSel kDramInterleaved = 0;

/** Byte counts can exceed 2^32 for large fmaps; use 64-bit everywhere. */
using Bytes = std::int64_t;

/** MAC / scalar-op counters. */
using OpCount = std::int64_t;

/** Times are kept in seconds (double); energies in joules (double). */
using Seconds = double;
using Joules = double;

/** Monetary cost in US dollars. */
using Dollars = double;

} // namespace gemini

#endif // GEMINI_COMMON_TYPES_HH
