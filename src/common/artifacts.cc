#include "src/common/artifacts.hh"

#include <cstdlib>
#include <filesystem>
#include <string_view>

#include "src/common/logging.hh"

namespace gemini::common {

std::string
artifactDir(int argc, char **argv, const std::string &fallback)
{
    std::string dir = fallback;
    if (const char *env = std::getenv("GEMINI_OUT_DIR"); env && *env)
        dir = env;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            dir = argv[i + 1];
            break;
        }
        if (arg.rfind("--out=", 0) == 0) {
            dir = std::string(arg.substr(6));
            break;
        }
    }
    if (dir.empty())
        dir = ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    GEMINI_ASSERT(!ec, "cannot create artifact dir ", dir, ": ",
                  ec.message());
    return dir;
}

std::string
artifactPath(const std::string &dir, const std::string &file)
{
    return (std::filesystem::path(dir) / file).string();
}

} // namespace gemini::common
