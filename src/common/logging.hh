/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic() is for conditions that indicate a bug in this library itself and
 * aborts; fatal() is for user errors (bad configuration, invalid arguments)
 * and exits cleanly with a non-zero status; warn()/inform() report status
 * without stopping.
 */

#ifndef GEMINI_COMMON_LOGGING_HH
#define GEMINI_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gemini {

namespace detail {

/** Compose a log line and emit it on stderr. */
inline void
emitLog(const char *level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n", level, file, line, msg.c_str());
}

/** Fold a sequence of stream-able values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace gemini

/** Report an internal invariant violation (a library bug) and abort. */
#define GEMINI_PANIC(...)                                                    \
    do {                                                                     \
        ::gemini::detail::emitLog("panic", __FILE__, __LINE__,               \
                                  ::gemini::detail::concat(__VA_ARGS__));    \
        std::abort();                                                        \
    } while (0)

/** Report an unrecoverable user/configuration error and exit(1). */
#define GEMINI_FATAL(...)                                                    \
    do {                                                                     \
        ::gemini::detail::emitLog("fatal", __FILE__, __LINE__,               \
                                  ::gemini::detail::concat(__VA_ARGS__));    \
        std::exit(1);                                                        \
    } while (0)

/** Report a suspicious-but-survivable condition. */
#define GEMINI_WARN(...)                                                     \
    ::gemini::detail::emitLog("warn", __FILE__, __LINE__,                    \
                              ::gemini::detail::concat(__VA_ARGS__))

/** Panic unless a library invariant holds. */
#define GEMINI_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GEMINI_PANIC("assertion failed: ", #cond, " ",                   \
                         ::gemini::detail::concat(__VA_ARGS__));             \
        }                                                                    \
    } while (0)

#endif // GEMINI_COMMON_LOGGING_HH
