/**
 * @file
 * Chunked bump arena for hot-path scratch: steady-state allocation is a
 * pointer bump into a retained chunk, so a warmed arena never touches the
 * heap again. reset() rewinds to empty but keeps every chunk, and every
 * chunk acquisition bumps an allocation-event counter — the same
 * "counters prove zero steady-state allocations" discipline the flat
 * cache tables use (common/flat_table.hh), asserted by the delta-eval
 * steady-state test.
 *
 * Only trivially-destructible element types make sense here: reset()
 * runs no destructors.
 */

#ifndef GEMINI_COMMON_ARENA_HH
#define GEMINI_COMMON_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define GEMINI_ZEROVEC_MMAP 1
#endif

namespace gemini::common {

/**
 * Fixed-size dense array whose elements default to all-zero bits, backed
 * by calloc: a fresh sizing maps demand-zero pages without writing them,
 * so only the pages actually touched ever fault in. Sizing a multi-
 * megabyte table costs microseconds instead of a full first-touch sweep
 * — the difference between a dense nodeCount^2 table being "free until
 * used" and paying a page fault per 4 KiB up front. std::vector cannot
 * express this: value-initialization writes (and faults) every element.
 *
 * Element types must be trivially copyable and destructible, and their
 * all-zero bit pattern must be a valid "empty" value (0.0, 0, nullptr).
 */
template <typename T>
class ZeroVec
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ZeroVec elements are raw zeroed storage");

  public:
    ZeroVec() = default;
    ~ZeroVec() { release(); }

    ZeroVec(const ZeroVec &) = delete;
    ZeroVec &operator=(const ZeroVec &) = delete;

    ZeroVec(ZeroVec &&o) noexcept
        : data_(o.data_), size_(o.size_), mapped_(o.mapped_)
    {
        o.data_ = nullptr;
        o.size_ = 0;
        o.mapped_ = false;
    }
    ZeroVec &
    operator=(ZeroVec &&o) noexcept
    {
        if (this != &o) {
            release();
            data_ = o.data_;
            size_ = o.size_;
            mapped_ = o.mapped_;
            o.data_ = nullptr;
            o.size_ = 0;
            o.mapped_ = false;
        }
        return *this;
    }

    /**
     * Size to `n` elements, all zero, discarding previous contents. The
     * new storage comes from a fresh anonymous mapping: calloc through a
     * recycled heap block would have to memset, which is exactly the
     * full-table sweep this type exists to avoid.
     *
     * Mid-size tables (up to kPopulateCap) are prefaulted in one syscall:
     * consumers scatter-touch most pages right away, and several hundred
     * scattered minor faults (~1.7 µs each, measured) cost 10× what one
     * MAP_POPULATE sweep does. Only beyond the cap — tables too big to
     * plausibly sweep — does the mapping stay demand-zero, paying a fault
     * per touched page in exchange for "free until used" sizing.
     */
    void
    resizeZero(std::size_t n)
    {
        release();
        if (n == 0)
            return;
        const std::size_t bytes = n * sizeof(T);
#ifdef GEMINI_ZEROVEC_MMAP
        if (bytes >= kMmapThreshold) {
#ifdef MAP_POPULATE
            const int populate =
                bytes <= kPopulateCap ? MAP_POPULATE : 0;
#else
            const int populate = 0; // macOS: demand-zero only
#endif
            void *p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                             MAP_PRIVATE | MAP_ANONYMOUS | populate, -1,
                             0);
            if (p == MAP_FAILED)
                throw std::bad_alloc();
            data_ = static_cast<T *>(p);
            size_ = n;
            mapped_ = true;
            return;
        }
#endif
        data_ = static_cast<T *>(std::calloc(n, sizeof(T)));
        if (data_ == nullptr)
            throw std::bad_alloc();
        size_ = n;
    }

    /** Overwrite every element (used for rare non-zero re-stamps). */
    void fill(T v) { std::fill_n(data_, size_, v); }

    std::size_t size() const { return size_; }
    T *data() { return data_; }
    const T *data() const { return data_; }
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

  private:
    /** Below this, calloc (cheap anyway); at or above, anonymous map. */
    static constexpr std::size_t kMmapThreshold = 64 * 1024;

    /** Prefault mappings up to this size; larger ones stay demand-zero. */
    static constexpr std::size_t kPopulateCap = 8 * 1024 * 1024;

    void
    release()
    {
        if (data_ == nullptr)
            return;
#ifdef GEMINI_ZEROVEC_MMAP
        if (mapped_) {
            ::munmap(data_, size_ * sizeof(T));
            data_ = nullptr;
            size_ = 0;
            mapped_ = false;
            return;
        }
#endif
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
    }

    T *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
};

/** A growable bump allocator with retained chunks. */
class BumpArena
{
  public:
    /** `chunk_bytes` is the growth granularity (also the first chunk). */
    explicit BumpArena(std::size_t chunk_bytes = 64 * 1024)
        : chunkBytes_(chunk_bytes < kMinChunk ? kMinChunk : chunk_bytes)
    {
    }

    BumpArena(const BumpArena &) = delete;
    BumpArena &operator=(const BumpArena &) = delete;

    /**
     * Bump-allocate `count` elements of T (trivially destructible),
     * aligned for T. Falls back to acquiring a chunk — counted as an
     * allocation event — only when the current chunk cannot fit.
     */
    template <typename T>
    std::span<T>
    allocSpan(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "BumpArena never runs destructors");
        const std::size_t bytes = count * sizeof(T);
        void *p = bump(bytes, alignof(T));
        return {static_cast<T *>(p), count};
    }

    /** Rewind to empty; every chunk (and its pages) is retained. */
    void
    reset()
    {
        cursor_ = 0;
        chunkIdx_ = 0;
        used_ = 0;
    }

    /** Chunk acquisitions since construction (heap allocations). */
    std::uint64_t allocEvents() const { return allocEvents_; }

    /** Bytes handed out since the last reset (alignment included). */
    std::size_t bytesUsed() const { return used_; }

    /** Total bytes held across retained chunks. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.size;
        return total;
    }

  private:
    static constexpr std::size_t kMinChunk = 4096;

    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    void *
    bump(std::size_t bytes, std::size_t align)
    {
        for (;;) {
            if (chunkIdx_ < chunks_.size()) {
                Chunk &c = chunks_[chunkIdx_];
                const std::size_t base = reinterpret_cast<std::uintptr_t>(
                                             c.data.get() + cursor_) %
                                         align;
                const std::size_t pad = base == 0 ? 0 : align - base;
                if (cursor_ + pad + bytes <= c.size) {
                    void *p = c.data.get() + cursor_ + pad;
                    cursor_ += pad + bytes;
                    used_ += pad + bytes;
                    return p;
                }
                // Current chunk exhausted: advance to the next retained
                // chunk (possibly acquiring a fresh one below).
                ++chunkIdx_;
                cursor_ = 0;
                continue;
            }
            const std::size_t size =
                bytes + align > chunkBytes_ ? bytes + align : chunkBytes_;
            chunks_.push_back(
                {std::make_unique<std::byte[]>(size), size});
            ++allocEvents_;
            cursor_ = 0;
        }
    }

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    std::size_t chunkIdx_ = 0; ///< chunk currently bumped into
    std::size_t cursor_ = 0;   ///< offset into the current chunk
    std::size_t used_ = 0;
    std::uint64_t allocEvents_ = 0;
};

} // namespace gemini::common

#endif // GEMINI_COMMON_ARENA_HH
