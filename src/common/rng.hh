/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * The SA engine must be reproducible under a fixed seed across platforms, so
 * we avoid std::mt19937's distribution objects (whose outputs are not
 * guaranteed identical across standard libraries) and implement the few
 * distributions we need directly.
 */

#ifndef GEMINI_COMMON_RNG_HH
#define GEMINI_COMMON_RNG_HH

#include <cstdint>
#include <vector>

#include "src/common/logging.hh"

namespace gemini {

/**
 * Small, fast, deterministic RNG with helper draws used by the SA engine.
 */
class Rng
{
  public:
    /** Seed with any 64-bit value; the state is expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) — bound must be positive. */
    std::int64_t nextInt(std::int64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Draw an index in [0, weights.size()) with probability proportional to
     * weights[i]. Weights must be non-negative with a positive sum.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextInt(
                static_cast<std::int64_t>(i)));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
};

} // namespace gemini

#endif // GEMINI_COMMON_RNG_HH
