#include "src/common/csv.hh"

#include "src/common/fs_atomic.hh"
#include "src/common/logging.hh"

namespace gemini {

namespace {

/** Quote a cell if it contains CSV-special characters. */
std::string
escapeCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvTable::CsvTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
CsvTable::beginRow()
{
    flushCurrent();
}

std::size_t
CsvTable::rowCount() const
{
    return rows_.size() + (current_.empty() ? 0 : 1);
}

void
CsvTable::flushCurrent() const
{
    if (!current_.empty()) {
        rows_.push_back(current_);
        current_.clear();
    }
}

std::string
CsvTable::toString() const
{
    flushCurrent();
    std::string out;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        if (i)
            out += ',';
        out += escapeCell(headers_[i]);
    }
    out += '\n';
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ',';
            out += escapeCell(row[i]);
        }
        out += '\n';
    }
    return out;
}

bool
CsvTable::writeFile(const std::string &path) const
{
    // Publish atomically: a crash mid-write must not leave a truncated
    // ledger where a complete one used to be.
    std::string error;
    if (!common::writeFileAtomic(path, toString(), &error)) {
        GEMINI_WARN("csv: ", error);
        return false;
    }
    return true;
}

} // namespace gemini
