#include "src/common/fs_atomic.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/fault_injection.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GEMINI_HAVE_POSIX_FS 1
#endif

namespace gemini::common {

namespace {

void
setError(std::string *error, const std::string &what, const std::string &path,
         int err)
{
    if (!error)
        return;
    *error = what + " " + path + ": " +
             (err ? std::strerror(err) : "short write");
}

#ifdef GEMINI_HAVE_POSIX_FS

/** Write all of `content` to fd, tolerating partial writes/EINTR. */
bool
writeAll(int fd, const std::string &content)
{
    std::size_t done = 0;
    while (done < content.size()) {
        const ssize_t n =
            ::write(fd, content.data() + done, content.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0) {
            errno = ENOSPC; // a 0-byte write with space left never happens
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** Flush the directory entry so the rename survives a power loss. */
void
fsyncParentDir(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd); // best-effort: some filesystems reject dir fsync
        ::close(fd);
    }
}

bool
writeFileAtomicPosix(const std::string &path, const std::string &content,
                     std::string *error)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        setError(error, "cannot create temp file", tmp, errno);
        return false;
    }
    bool ok = writeAll(fd, content);
    if (ok && fault::shouldFail("atomic.write")) {
        ok = false;
        errno = ENOSPC;
    }
    if (ok && ::fsync(fd) != 0)
        ok = false;
    if (!ok)
        setError(error, "cannot write temp file", tmp, errno);
    if (::close(fd) != 0 && ok) {
        ok = false;
        setError(error, "cannot write temp file", tmp, errno);
    }
    if (ok && fault::shouldFail("atomic.rename")) {
        ok = false;
        errno = EIO;
        setError(error, "cannot publish", path, errno);
    }
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) {
        ok = false;
        setError(error, "cannot publish", path, errno);
    }
    if (!ok) {
        ::unlink(tmp.c_str());
        return false;
    }
    fsyncParentDir(path);
    return true;
}

#else // !GEMINI_HAVE_POSIX_FS

/** Portable fallback: still temp+rename, but without durability fsyncs. */
bool
writeFileAtomicPortable(const std::string &path, const std::string &content,
                        std::string *error)
{
    const std::string tmp = path + ".tmp";
    {
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            setError(error, "cannot create temp file", tmp, errno);
            return false;
        }
        const std::size_t n =
            std::fwrite(content.data(), 1, content.size(), f);
        bool ok = n == content.size() && !fault::shouldFail("atomic.write");
        if (std::fclose(f) != 0)
            ok = false;
        if (!ok) {
            setError(error, "cannot write temp file", tmp, errno);
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::remove(path.c_str()); // Windows rename does not overwrite
    if (fault::shouldFail("atomic.rename") ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "cannot publish", path, errno ? errno : EIO);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

#endif // GEMINI_HAVE_POSIX_FS

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *error)
{
#ifdef GEMINI_HAVE_POSIX_FS
    return writeFileAtomicPosix(path, content, error);
#else
    return writeFileAtomicPortable(path, content, error);
#endif
}

} // namespace gemini::common
