#include "src/common/rng.hh"

#include <cmath>

namespace gemini {

namespace {

/** splitmix64 step used to expand the user seed into four state words. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &w : s_)
        w = splitmix64(sm);
    // All-zero state is the one invalid state for xoshiro; seed==specific
    // values could in principle produce it, so guard.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::int64_t
Rng::nextInt(std::int64_t bound)
{
    GEMINI_ASSERT(bound > 0, "nextInt bound must be positive, got ", bound);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t ub = static_cast<std::uint64_t>(bound);
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % ub;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return static_cast<std::int64_t>(draw % ub);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    GEMINI_ASSERT(lo <= hi, "nextRange lo>hi: ", lo, ">", hi);
    return lo + nextInt(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    GEMINI_ASSERT(!weights.empty(), "nextWeighted on empty weights");
    double total = 0.0;
    for (double w : weights) {
        GEMINI_ASSERT(w >= 0.0, "negative weight ", w);
        total += w;
    }
    GEMINI_ASSERT(total > 0.0, "nextWeighted requires a positive weight sum");
    double draw = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace gemini
