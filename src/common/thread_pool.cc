#include "src/common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace gemini {

std::vector<int>
parseCpuList(std::string_view text)
{
    std::vector<int> cpus;
    std::size_t i = 0;
    const auto parse_int = [&](int &out) {
        while (i < text.size() && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        const char *begin = text.data() + i;
        const char *end = text.data() + text.size();
        auto [ptr, ec] = std::from_chars(begin, end, out);
        if (ec != std::errc{} || ptr == begin)
            return false;
        i += static_cast<std::size_t>(ptr - begin);
        return true;
    };
    while (i < text.size()) {
        int lo = 0;
        if (!parse_int(lo)) {
            ++i; // skip a malformed character and resync
            continue;
        }
        int hi = lo;
        if (i < text.size() && text[i] == '-') {
            ++i;
            if (!parse_int(hi))
                hi = lo;
        }
        for (int c = lo; c <= hi; ++c)
            cpus.push_back(c);
        while (i < text.size() && text[i] != ',')
            ++i;
        if (i < text.size())
            ++i; // consume the comma
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

NumaTopology
detectNumaTopology()
{
    NumaTopology topo;
#if defined(__linux__)
    for (int node = 0;; ++node) {
        std::ostringstream path;
        path << "/sys/devices/system/node/node" << node << "/cpulist";
        std::ifstream in(path.str());
        if (!in.is_open())
            break;
        std::stringstream buf;
        buf << in.rdbuf();
        std::vector<int> cpus = parseCpuList(buf.str());
        if (!cpus.empty())
            topo.nodeCpus.push_back(std::move(cpus));
    }
#endif
    if (topo.nodeCpus.empty()) {
        // No sysfs topology (non-Linux, masked /sys): one synthetic node
        // with every CPU the standard library reports.
        unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0)
            hw = 4;
        std::vector<int> cpus(hw);
        for (unsigned c = 0; c < hw; ++c)
            cpus[c] = static_cast<int>(c);
        topo.nodeCpus.push_back(std::move(cpus));
    }
    return topo;
}

namespace {
/** Set by workerLoop for the lifetime of the worker thread. */
thread_local common::BumpArena *t_workerArena = nullptr;
} // namespace

common::BumpArena *
ThreadPool::workerArena()
{
    return t_workerArena;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    Options options;
    options.threads = threads;
    start(options);
}

ThreadPool::ThreadPool(const Options &options) { start(options); }

void
ThreadPool::start(const Options &options)
{
    std::size_t threads = options.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }
    topology_ = detectNumaTopology();

    arenas_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        arenas_.push_back(
            std::make_unique<common::BumpArena>(options.arenaChunkBytes));

    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });

#if defined(__linux__)
    // Pin only across real node boundaries: workers round-robin over the
    // nodes so each node gets an even share, and every worker's arena
    // pages first-touch on its own node.
    if (options.pinWorkers && topology_.nodeCount() > 1) {
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            const std::vector<int> &cpus =
                topology_.nodeCpus[workerNode(w)];
            cpu_set_t set;
            CPU_ZERO(&set);
            for (int c : cpus)
                if (c >= 0 && c < CPU_SETSIZE)
                    CPU_SET(c, &set);
            if (pthread_setaffinity_np(workers_[w].native_handle(),
                                       sizeof(set), &set) == 0)
                ++pinned_;
        }
    }
#endif
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mutex_);
        shutdown_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mutex_);
        tasks_.push(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && inFlight_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    // Chunk by an atomic cursor so uneven task costs balance dynamically.
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t workers = workers_.size();
    for (std::size_t w = 0; w < workers; ++w) {
        submit([cursor, count, &fn] {
            for (;;) {
                const std::size_t i = cursor->fetch_add(1);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    waitIdle();
    // Synchronous semantics: an fn(i) that threw surfaces here, on the
    // calling thread, exactly as a serial loop would.
    if (std::exception_ptr err = takeTaskError())
        std::rethrow_exception(err);
}

std::exception_ptr
ThreadPool::takeTaskError()
{
    std::unique_lock lock(mutex_);
    return std::exchange(taskError_, nullptr);
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    t_workerArena = arenas_[worker].get();
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return shutdown_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                // shutdown_ must be true here.
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
            ++inFlight_;
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            // Never let a task kill this worker thread; stash the first
            // exception for takeTaskError()/parallelFor() to surface.
            err = std::current_exception();
        }
        {
            std::unique_lock lock(mutex_);
            if (err && !taskError_)
                taskError_ = err;
            --inFlight_;
            if (tasks_.empty() && inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace gemini
