#include "src/common/thread_pool.hh"

#include <atomic>
#include <utility>

namespace gemini {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mutex_);
        shutdown_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mutex_);
        tasks_.push(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && inFlight_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    // Chunk by an atomic cursor so uneven task costs balance dynamically.
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t workers = workers_.size();
    for (std::size_t w = 0; w < workers; ++w) {
        submit([cursor, count, &fn] {
            for (;;) {
                const std::size_t i = cursor->fetch_add(1);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    waitIdle();
    // Synchronous semantics: an fn(i) that threw surfaces here, on the
    // calling thread, exactly as a serial loop would.
    if (std::exception_ptr err = takeTaskError())
        std::rethrow_exception(err);
}

std::exception_ptr
ThreadPool::takeTaskError()
{
    std::unique_lock lock(mutex_);
    return std::exchange(taskError_, nullptr);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return shutdown_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                // shutdown_ must be true here.
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
            ++inFlight_;
        }
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            // Never let a task kill this worker thread; stash the first
            // exception for takeTaskError()/parallelFor() to surface.
            err = std::current_exception();
        }
        {
            std::unique_lock lock(mutex_);
            if (err && !taskError_)
                taskError_ = err;
            --inFlight_;
            if (tasks_.empty() && inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace gemini
