#include "src/api/results.hh"

#include <cmath>
#include <utility>

#include "src/api/json_reader.hh"

namespace gemini::api {

using common::json::Value;

namespace {

/** Write a possibly-infinite number (null = infinity on the wire). */
void
setExtended(Value &obj, const char *key, double d)
{
    if (std::isfinite(d))
        obj.set(key, d);
    else
        obj.set(key, Value(nullptr));
}

} // namespace

// ---- ArchConfig -----------------------------------------------------------

Value
archConfigToJson(const arch::ArchConfig &cfg)
{
    Value v = Value::object();
    v.set("name", cfg.name);
    v.set("x_cores", cfg.xCores);
    v.set("y_cores", cfg.yCores);
    v.set("x_cut", cfg.xCut);
    v.set("y_cut", cfg.yCut);
    v.set("topology", arch::topologyName(cfg.topology));
    v.set("noc_gbps", cfg.nocBwGBps);
    v.set("d2d_gbps", cfg.d2dBwGBps);
    v.set("dram_gbps", cfg.dramBwGBps);
    v.set("dram_count", cfg.dramCount);
    v.set("macs_per_core", cfg.macsPerCore);
    v.set("glb_kib", cfg.glbKiB);
    v.set("freq_ghz", cfg.freqGHz);
    return v;
}

bool
archConfigFromJson(const Value &v, const std::string &path,
                   arch::ArchConfig &out, std::string *error)
{
    ObjectReader r(v, path, error);
    arch::ArchConfig cfg;
    r.getString("name", cfg.name);
    r.getInt("x_cores", cfg.xCores);
    r.getInt("y_cores", cfg.yCores);
    r.getInt("x_cut", cfg.xCut);
    r.getInt("y_cut", cfg.yCut);
    std::string topology = arch::topologyName(cfg.topology);
    r.getString("topology", topology);
    if (r.ok() && !arch::topologyFromName(topology, cfg.topology)) {
        if (error && error->empty()) {
            std::string valid;
            for (const arch::Topology t : arch::kAllTopologies) {
                if (!valid.empty())
                    valid += ", ";
                valid += arch::topologyName(t);
            }
            *error = path + ".topology: unknown topology \"" + topology +
                     "\" (valid: " + valid + ")";
        }
        return false;
    }
    r.getDouble("noc_gbps", cfg.nocBwGBps);
    r.getDouble("d2d_gbps", cfg.d2dBwGBps);
    r.getDouble("dram_gbps", cfg.dramBwGBps);
    r.getInt("dram_count", cfg.dramCount);
    r.getInt("macs_per_core", cfg.macsPerCore);
    r.getInt("glb_kib", cfg.glbKiB);
    r.getDouble("freq_ghz", cfg.freqGHz);
    if (!r.finish())
        return false;
    out = cfg;
    return true;
}

// ---- EvalBreakdown --------------------------------------------------------

Value
evalBreakdownToJson(const eval::EvalBreakdown &b)
{
    Value v = Value::object();
    v.set("delay_s", b.delay);
    v.set("intra_tile_j", b.intraTileEnergy);
    v.set("noc_j", b.nocEnergy);
    v.set("d2d_j", b.d2dEnergy);
    v.set("dram_j", b.dramEnergy);
    v.set("dram_bytes", b.dramBytes);
    v.set("hop_bytes", b.hopBytes);
    v.set("d2d_hop_bytes", b.d2dHopBytes);
    v.set("glb_overflow", b.glbOverflow);
    return v;
}

bool
evalBreakdownFromJson(const Value &v, const std::string &path,
                      eval::EvalBreakdown &out, std::string *error)
{
    ObjectReader r(v, path, error);
    eval::EvalBreakdown b;
    r.getDouble("delay_s", b.delay);
    r.getDouble("intra_tile_j", b.intraTileEnergy);
    r.getDouble("noc_j", b.nocEnergy);
    r.getDouble("d2d_j", b.d2dEnergy);
    r.getDouble("dram_j", b.dramEnergy);
    r.getDouble("dram_bytes", b.dramBytes);
    r.getDouble("hop_bytes", b.hopBytes);
    r.getDouble("d2d_hop_bytes", b.d2dHopBytes);
    r.getDouble("glb_overflow", b.glbOverflow);
    if (!r.finish())
        return false;
    out = b;
    return true;
}

// ---- CostBreakdown --------------------------------------------------------

Value
costBreakdownToJson(const cost::CostBreakdown &b)
{
    Value v = Value::object();
    v.set("compute_silicon", b.computeSilicon);
    v.set("io_silicon", b.ioSilicon);
    v.set("dram", b.dram);
    v.set("package", b.package);
    v.set("compute_die_area_mm2", b.computeDieAreaMm2);
    v.set("total_silicon_area_mm2", b.totalSiliconAreaMm2);
    v.set("compute_die_yield", b.computeDieYield);
    v.set("d2d_area_fraction", b.d2dAreaFraction);
    v.set("total", b.total()); // derived, for readers; ignored on parse
    return v;
}

bool
costBreakdownFromJson(const Value &v, const std::string &path,
                      cost::CostBreakdown &out, std::string *error)
{
    ObjectReader r(v, path, error);
    cost::CostBreakdown b;
    r.getDouble("compute_silicon", b.computeSilicon);
    r.getDouble("io_silicon", b.ioSilicon);
    r.getDouble("dram", b.dram);
    r.getDouble("package", b.package);
    r.getDouble("compute_die_area_mm2", b.computeDieAreaMm2);
    r.getDouble("total_silicon_area_mm2", b.totalSiliconAreaMm2);
    r.getDouble("compute_die_yield", b.computeDieYield);
    r.getDouble("d2d_area_fraction", b.d2dAreaFraction);
    double ignored_total = 0.0;
    r.getDouble("total", ignored_total);
    if (!r.finish())
        return false;
    out = b;
    return true;
}

// ---- LpMapping ------------------------------------------------------------

namespace {

Value
schemeToJson(const mapping::MappingScheme &s)
{
    Value part = Value::object();
    part.set("h", s.part.h);
    part.set("w", s.part.w);
    part.set("b", s.part.b);
    part.set("k", s.part.k);

    Value cores = Value::array();
    for (const CoreId c : s.coreGroup)
        cores.push(static_cast<std::int64_t>(c));

    Value fd = Value::object();
    fd.set("ifmap", static_cast<std::int64_t>(s.fd.ifmap));
    fd.set("weight", static_cast<std::int64_t>(s.fd.weight));
    fd.set("ofmap", static_cast<std::int64_t>(s.fd.ofmap));

    Value v = Value::object();
    v.set("partition", std::move(part));
    v.set("core_group", std::move(cores));
    v.set("flow", std::move(fd));
    return v;
}

bool
schemeFromJson(const Value &v, const std::string &path,
               mapping::MappingScheme &out, std::string *error)
{
    ObjectReader r(v, path, error);
    mapping::MappingScheme s;
    if (const Value *part = r.require("partition")) {
        ObjectReader pr(*part, path + ".partition", error);
        pr.getInt("h", s.part.h);
        pr.getInt("w", s.part.w);
        pr.getInt("b", s.part.b);
        pr.getInt("k", s.part.k);
        if (!pr.finish())
            return false;
    }
    r.getIntList("core_group", s.coreGroup);
    if (const Value *fd = r.require("flow")) {
        ObjectReader fr(*fd, path + ".flow", error);
        fr.getInt("ifmap", s.fd.ifmap);
        fr.getInt("weight", s.fd.weight);
        fr.getInt("ofmap", s.fd.ofmap);
        if (!fr.finish())
            return false;
    }
    if (!r.finish())
        return false;
    out = std::move(s);
    return true;
}

} // namespace

Value
lpMappingToJson(const mapping::LpMapping &m)
{
    Value groups = Value::array();
    for (const mapping::LayerGroupMapping &g : m.groups) {
        Value layers = Value::array();
        for (const LayerId l : g.layers)
            layers.push(static_cast<std::int64_t>(l));
        Value schemes = Value::array();
        for (const mapping::MappingScheme &s : g.schemes)
            schemes.push(schemeToJson(s));
        Value gv = Value::object();
        gv.set("layers", std::move(layers));
        gv.set("batch_unit", g.batchUnit);
        gv.set("schemes", std::move(schemes));
        groups.push(std::move(gv));
    }
    Value v = Value::object();
    v.set("batch", m.batch);
    v.set("groups", std::move(groups));
    return v;
}

bool
lpMappingFromJson(const Value &v, const std::string &path,
                  mapping::LpMapping &out, std::string *error)
{
    ObjectReader r(v, path, error);
    mapping::LpMapping m;
    r.getInt("batch", m.batch);
    if (const Value *groups = r.require("groups")) {
        if (!groups->isArray()) {
            if (error && error->empty())
                *error = path + ".groups: expected an array";
            return false;
        }
        std::size_t gi = 0;
        for (const Value &gv : groups->asArray()) {
            const std::string gpath =
                path + ".groups[" + std::to_string(gi) + "]";
            ObjectReader gr(gv, gpath, error);
            mapping::LayerGroupMapping group;
            gr.getIntList("layers", group.layers);
            gr.getInt("batch_unit", group.batchUnit);
            if (const Value *schemes = gr.require("schemes")) {
                if (!schemes->isArray()) {
                    if (error && error->empty())
                        *error = gpath + ".schemes: expected an array";
                    return false;
                }
                std::size_t si = 0;
                for (const Value &sv : schemes->asArray()) {
                    mapping::MappingScheme s;
                    if (!schemeFromJson(sv,
                                        gpath + ".schemes[" +
                                            std::to_string(si) + "]",
                                        s, error))
                        return false;
                    group.schemes.push_back(std::move(s));
                    ++si;
                }
            }
            if (!gr.finish())
                return false;
            if (group.schemes.size() != group.layers.size()) {
                if (error && error->empty())
                    *error = gpath + ": schemes and layers must be "
                                     "parallel arrays";
                return false;
            }
            m.groups.push_back(std::move(group));
            ++gi;
        }
    }
    if (!r.finish())
        return false;
    out = std::move(m);
    return true;
}

// ---- MappingResult --------------------------------------------------------

namespace {

Value
saStatsToJson(const mapping::SaStats &s)
{
    Value v = Value::object();
    v.set("proposed", s.proposed);
    v.set("inapplicable", s.inapplicable);
    v.set("accepted", s.accepted);
    v.set("improved", s.improved);
    v.set("initial_cost", s.initialCost);
    v.set("final_cost", s.finalCost);
    v.set("chains", s.chains);
    v.set("best_chain", s.bestChain);
    v.set("iters_run", s.itersRun);
    v.set("best_iteration", s.bestIteration);
    return v;
}

bool
saStatsFromJson(const Value &v, const std::string &path,
                mapping::SaStats &out, std::string *error)
{
    ObjectReader r(v, path, error);
    mapping::SaStats s;
    r.getInt("proposed", s.proposed);
    r.getInt("inapplicable", s.inapplicable);
    r.getInt("accepted", s.accepted);
    r.getInt("improved", s.improved);
    r.getDouble("initial_cost", s.initialCost);
    r.getDouble("final_cost", s.finalCost);
    r.getInt("chains", s.chains);
    r.getInt("best_chain", s.bestChain);
    // Optional keys (absent in pre-plateau files): defaults hold.
    r.getInt("iters_run", s.itersRun);
    r.getInt("best_iteration", s.bestIteration);
    if (!r.finish())
        return false;
    out = s;
    return true;
}

} // namespace

Value
mappingResultToJson(const mapping::MappingResult &r)
{
    Value groups = Value::array();
    for (const eval::EvalBreakdown &g : r.groups)
        groups.push(evalBreakdownToJson(g));
    Value v = Value::object();
    v.set("mapping", lpMappingToJson(r.mapping));
    v.set("groups", std::move(groups));
    v.set("total", evalBreakdownToJson(r.total));
    v.set("sa_stats", saStatsToJson(r.saStats));
    return v;
}

bool
mappingResultFromJson(const Value &v, const std::string &path,
                      mapping::MappingResult &out, std::string *error)
{
    ObjectReader r(v, path, error);
    mapping::MappingResult result;
    if (const Value *m = r.require("mapping")) {
        if (!lpMappingFromJson(*m, path + ".mapping", result.mapping,
                               error))
            return false;
    }
    if (const Value *groups = r.child("groups")) {
        if (!groups->isArray()) {
            if (error && error->empty())
                *error = path + ".groups: expected an array";
            return false;
        }
        std::size_t i = 0;
        for (const Value &gv : groups->asArray()) {
            eval::EvalBreakdown b;
            if (!evalBreakdownFromJson(
                    gv, path + ".groups[" + std::to_string(i) + "]", b,
                    error))
                return false;
            result.groups.push_back(b);
            ++i;
        }
    }
    if (const Value *total = r.child("total")) {
        if (!evalBreakdownFromJson(*total, path + ".total", result.total,
                                   error))
            return false;
    }
    if (const Value *stats = r.child("sa_stats")) {
        if (!saStatsFromJson(*stats, path + ".sa_stats", result.saStats,
                             error))
            return false;
    }
    if (!r.finish())
        return false;
    out = std::move(result);
    return true;
}

// ---- DseResult ------------------------------------------------------------

namespace {

Value
dseRecordToJson(const dse::DseRecord &rec)
{
    Value per_model = Value::array();
    for (const eval::EvalBreakdown &b : rec.perModel)
        per_model.push(evalBreakdownToJson(b));
    Value v = Value::object();
    v.set("arch", archConfigToJson(rec.arch));
    v.set("mc", costBreakdownToJson(rec.mc));
    v.set("delay_geo_s", rec.delayGeo);
    v.set("energy_geo_j", rec.energyGeo);
    setExtended(v, "objective", rec.objective);
    v.set("feasible", rec.feasible);
    v.set("per_model", std::move(per_model));
    setExtended(v, "objective_lower_bound", rec.objectiveLowerBound);
    v.set("rung_reached", rec.rungReached);
    v.set("pruned_by_bound", rec.prunedByBound);
    v.set("poisoned", rec.poisoned);
    v.set("poison_reason", rec.poisonReason);
    v.set("sa_iters", rec.saIters);
    v.set("eval_seconds", rec.evalSeconds);
    v.set("bound_compute_s", rec.boundComputeSeconds);
    v.set("bound_dram_s", rec.boundDramSeconds);
    v.set("bound_noc_s", rec.boundNocSeconds);
    v.set("bound_refetch_bytes", rec.boundRefetchBytes);
    v.set("seeded_analytic", rec.seededAnalytic);
    return v;
}

bool
dseRecordFromJson(const Value &v, const std::string &path,
                  dse::DseRecord &out, std::string *error)
{
    ObjectReader r(v, path, error);
    dse::DseRecord rec;
    if (const Value *archv = r.require("arch")) {
        if (!archConfigFromJson(*archv, path + ".arch", rec.arch, error))
            return false;
    }
    if (const Value *mc = r.child("mc")) {
        if (!costBreakdownFromJson(*mc, path + ".mc", rec.mc, error))
            return false;
    }
    r.getDouble("delay_geo_s", rec.delayGeo);
    r.getDouble("energy_geo_j", rec.energyGeo);
    r.getExtendedDouble("objective", rec.objective);
    r.getBool("feasible", rec.feasible);
    if (const Value *per_model = r.child("per_model")) {
        if (!per_model->isArray()) {
            if (error && error->empty())
                *error = path + ".per_model: expected an array";
            return false;
        }
        std::size_t i = 0;
        for (const Value &bv : per_model->asArray()) {
            eval::EvalBreakdown b;
            if (!evalBreakdownFromJson(
                    bv, path + ".per_model[" + std::to_string(i) + "]", b,
                    error))
                return false;
            rec.perModel.push_back(b);
            ++i;
        }
    }
    r.getExtendedDouble("objective_lower_bound", rec.objectiveLowerBound);
    r.getInt("rung_reached", rec.rungReached);
    r.getBool("pruned_by_bound", rec.prunedByBound);
    // Optional keys (absent in pre-worker-mode files): defaults hold.
    r.getBool("poisoned", rec.poisoned);
    r.getString("poison_reason", rec.poisonReason);
    r.getInt("sa_iters", rec.saIters);
    r.getDouble("eval_seconds", rec.evalSeconds);
    // Bound decomposition + seed flag (absent in pre-analytical files).
    r.getDouble("bound_compute_s", rec.boundComputeSeconds);
    r.getDouble("bound_dram_s", rec.boundDramSeconds);
    r.getDouble("bound_noc_s", rec.boundNocSeconds);
    r.getDouble("bound_refetch_bytes", rec.boundRefetchBytes);
    r.getBool("seeded_analytic", rec.seededAnalytic);
    if (!r.finish())
        return false;
    out = std::move(rec);
    return true;
}

Value
rungStatsToJson(const dse::DseRungStats &rs)
{
    Value v = Value::object();
    v.set("name", rs.name);
    v.set("entered", rs.entered);
    v.set("advanced", rs.advanced);
    v.set("pruned_bound", rs.prunedBound);
    v.set("pruned_rank", rs.prunedRank);
    v.set("poisoned", rs.poisoned);
    v.set("sa_iters", rs.saIters);
    v.set("cpu_seconds", rs.cpuSeconds);
    setExtended(v, "best_objective", rs.bestObjective);
    return v;
}

bool
rungStatsFromJson(const Value &v, const std::string &path,
                  dse::DseRungStats &out, std::string *error)
{
    ObjectReader r(v, path, error);
    dse::DseRungStats rs;
    r.getString("name", rs.name);
    r.getInt("entered", rs.entered);
    r.getInt("advanced", rs.advanced);
    r.getInt("pruned_bound", rs.prunedBound);
    r.getInt("pruned_rank", rs.prunedRank);
    r.getInt("poisoned", rs.poisoned); // optional: absent in old files
    r.getInt("sa_iters", rs.saIters);
    r.getDouble("cpu_seconds", rs.cpuSeconds);
    r.getExtendedDouble("best_objective", rs.bestObjective);
    if (!r.finish())
        return false;
    out = std::move(rs);
    return true;
}

} // namespace

Value
dseResultToJson(const dse::DseResult &r)
{
    Value records = Value::array();
    for (const dse::DseRecord &rec : r.records)
        records.push(dseRecordToJson(rec));
    Value rungs = Value::array();
    for (const dse::DseRungStats &rs : r.stats.rungs)
        rungs.push(rungStatsToJson(rs));
    Value stats = Value::object();
    stats.set("scheduled", r.stats.scheduled);
    stats.set("cancelled", r.stats.cancelled);
    stats.set("truncated", r.stats.truncated);
    stats.set("resumed_rung", r.stats.resumedRung);
    stats.set("rungs", std::move(rungs));
    Value v = Value::object();
    v.set("records", std::move(records));
    v.set("best_index", r.bestIndex);
    v.set("stats", std::move(stats));
    return v;
}

bool
dseResultFromJson(const Value &v, const std::string &path,
                  dse::DseResult &out, std::string *error)
{
    ObjectReader r(v, path, error);
    dse::DseResult result;
    if (const Value *records = r.require("records")) {
        if (!records->isArray()) {
            if (error && error->empty())
                *error = path + ".records: expected an array";
            return false;
        }
        std::size_t i = 0;
        for (const Value &rv : records->asArray()) {
            dse::DseRecord rec;
            if (!dseRecordFromJson(
                    rv, path + ".records[" + std::to_string(i) + "]", rec,
                    error))
                return false;
            result.records.push_back(std::move(rec));
            ++i;
        }
    }
    r.getInt("best_index", result.bestIndex);
    if (const Value *stats = r.child("stats")) {
        ObjectReader sr(*stats, path + ".stats", error);
        sr.getBool("scheduled", result.stats.scheduled);
        sr.getBool("cancelled", result.stats.cancelled);
        sr.getBool("truncated", result.stats.truncated);
        sr.getInt("resumed_rung", result.stats.resumedRung);
        if (const Value *rungs = sr.child("rungs")) {
            if (!rungs->isArray()) {
                if (error && error->empty())
                    *error = path + ".stats.rungs: expected an array";
                return false;
            }
            std::size_t i = 0;
            for (const Value &rv : rungs->asArray()) {
                dse::DseRungStats rs;
                if (!rungStatsFromJson(rv,
                                       path + ".stats.rungs[" +
                                           std::to_string(i) + "]",
                                       rs, error))
                    return false;
                result.stats.rungs.push_back(std::move(rs));
                ++i;
            }
        }
        if (!sr.finish())
            return false;
    }
    if (!r.finish())
        return false;
    if (result.bestIndex >= 0 &&
        static_cast<std::size_t>(result.bestIndex) >=
            result.records.size()) {
        if (error && error->empty())
            *error = path + ".best_index: out of range for " +
                     std::to_string(result.records.size()) + " records";
        return false;
    }
    out = std::move(result);
    return true;
}

} // namespace gemini::api
