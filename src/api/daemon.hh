/**
 * @file
 * The REST face of the exploration daemon (`gemini serve`): a thin,
 * stateless translation layer between HTTP and the JobScheduler. All
 * job state lives in the scheduler (and durably in the ResultStore);
 * the daemon only parses, routes, and serializes.
 *
 * Endpoints (all JSON; errors are {"error": "..."} with a 4xx/5xx):
 *
 *   GET    /healthz                liveness + queue gauges
 *   POST   /v1/jobs                admit an ExperimentSpec; 202 on a
 *                                  fresh admission, 200 when admission
 *                                  dedup answered instantly (cache hit
 *                                  or attached to an active duplicate)
 *   GET    /v1/jobs                every known job, submission order
 *   GET    /v1/jobs/{id}           status + DseStats summary
 *   GET    /v1/jobs/{id}/result    the full ExperimentResult document
 *                                  (the same JSON `gemini run` writes)
 *   GET    /v1/jobs/{id}/events    chunked NDJSON stream of progress
 *                                  events; replays from `?after=N`,
 *                                  then follows live until terminal
 *   DELETE /v1/jobs/{id}           cooperative cancel
 *
 * POST body: either a bare ExperimentSpec object or a wrapper
 * {"spec": {...}, "tenant": "...", "priority": N, "weight": N,
 * "resume": bool}; query parameters of the same names override the
 * wrapper (curl ergonomics: POST the spec file, put identity in the
 * URL).
 */

#ifndef GEMINI_API_DAEMON_HH
#define GEMINI_API_DAEMON_HH

#include <string>

#include "src/api/scheduler.hh"
#include "src/net/server.hh"

namespace gemini::api {

struct DaemonOptions
{
    net::ServerOptions server;

    /**
     * Event-stream long-poll granularity: how often a streaming handler
     * wakes to notice server shutdown or a broken peer.
     */
    double eventPollSeconds = 0.25;
};

/**
 * Binds an HttpServer to a JobScheduler. The scheduler (and everything
 * under it) must outlive the daemon; stopping the daemon stops the HTTP
 * side only — the caller owns scheduler drain/cancel policy (the serve
 * CLI stops the server first, then the scheduler, so in-flight jobs
 * journal their rungs before the process exits).
 */
class Daemon
{
  public:
    explicit Daemon(JobScheduler &scheduler, DaemonOptions options = {});

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind + listen. False (with message) on failure. */
    bool start(std::string *error = nullptr);

    /** The bound port (after start()). */
    int port() const { return server_.port(); }

    /** Stop serving HTTP (idempotent; also runs at destruction). */
    void stop() { server_.stop(); }

    net::HttpServer &server() { return server_; }

  private:
    void handle(const net::HttpRequest &request, net::ResponseWriter &w);

    void handleSubmit(const net::HttpRequest &request,
                      net::ResponseWriter &w);
    void handleStatus(const std::string &id, net::ResponseWriter &w);
    void handleResult(const std::string &id, net::ResponseWriter &w);
    void handleEvents(const net::HttpRequest &request, const std::string &id,
                      net::ResponseWriter &w);
    void handleCancel(const std::string &id, net::ResponseWriter &w);
    void handleList(net::ResponseWriter &w);
    void handleHealth(net::ResponseWriter &w);

    JobScheduler &scheduler_;
    DaemonOptions options_;
    net::HttpServer server_;
};

} // namespace gemini::api

#endif // GEMINI_API_DAEMON_HH
