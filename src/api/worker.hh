/**
 * @file
 * The worker half of the supervised execution mode: one `gemini worker`
 * subprocess speaks a length-prefixed JSON frame protocol (see
 * common/subprocess.hh) on stdin/stdout and evaluates one DSE candidate
 * per request, exactly as the in-process scheduler would — same engine
 * options, same warm starts, same SA seeds — so worker-mode runs produce
 * bit-identical winners.
 *
 * Protocol (one outstanding request per worker, strictly alternating):
 *
 *   supervisor -> worker   {"kind":"init","spec":{...}}
 *   worker -> supervisor   {"kind":"ready"} | {"kind":"error",...}
 *   supervisor -> worker   {"kind":"eval","seq":N,"index":i,"rung":r,
 *                           "iters":..,"chains":..,"seed":"0x..",
 *                           "arch":{...},"warm_starts":[...]}
 *   worker -> supervisor   {"kind":"heartbeat","seq":N}   (repeated)
 *   worker -> supervisor   {"kind":"result","seq":N,"per_model":[...],
 *                           "mappings":[...]}
 *                        | {"kind":"error","seq":N,"message":"..."}
 *   supervisor -> worker   {"kind":"shutdown"}  (or just EOF on stdin)
 *
 * Heartbeats flow from a dedicated thread while the evaluation runs, so
 * a worker that stops beating is genuinely wedged (or dead), not merely
 * busy — the supervisor's watchdog kills it either way.
 *
 * The 64-bit SA seed crosses the wire as a hex string: JSON numbers are
 * doubles here, and a seed rounded through a double would silently break
 * the bit-determinism contract.
 *
 * Worker-side fault sites (armed via GEMINI_FAULT_INJECT, which workers
 * inherit): `worker.crash` / `worker.crash.cand<i>` make the evaluation
 * die instantly like a segfault would; `worker.heartbeat` wedges the
 * heartbeat loop to simulate a hang.
 */

#ifndef GEMINI_API_WORKER_HH
#define GEMINI_API_WORKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/common/json.hh"
#include "src/eval/breakdown.hh"
#include "src/mapping/encoding.hh"

namespace gemini::api {

/** One supervisor->worker frame. */
struct WorkerRequest
{
    enum class Kind
    {
        Init,    ///< carries the experiment spec; expect ready/error
        Eval,    ///< evaluate one candidate; expect result/error
        Shutdown ///< exit cleanly (EOF on stdin means the same)
    };

    Kind kind = Kind::Shutdown;
    std::uint64_t seq = 0; ///< echoed by every response to this request

    // Init
    std::string specText; ///< full ExperimentSpec JSON text

    // Eval (mirrors dse::RemoteEvalRequest; see dse.hh for rung codes)
    std::size_t index = 0;
    int rung = -1;
    int iters = 0;
    int chains = 1;
    std::uint64_t seed = 0;
    arch::ArchConfig arch;
    std::vector<mapping::LpMapping> warmStarts;

    std::string toText() const;
    static bool fromText(const std::string &text, WorkerRequest &out,
                         std::string *error);
};

/** One worker->supervisor frame. */
struct WorkerResponse
{
    enum class Kind
    {
        Ready,     ///< init accepted, spec resolved
        Heartbeat, ///< evaluation alive (watchdog food)
        Result,    ///< evaluation finished
        Error      ///< structured failure (bad spec, engine threw...)
    };

    Kind kind = Kind::Error;
    std::uint64_t seq = 0;
    std::string message; ///< Error only

    // Result only (mirrors dse::RemoteEvalOutcome)
    std::vector<eval::EvalBreakdown> perModel;
    std::vector<mapping::LpMapping> mappings;

    std::string toText() const;
    static bool fromText(const std::string &text, WorkerResponse &out,
                         std::string *error);
};

/**
 * The `gemini worker` main loop: frames on stdin/stdout until EOF or a
 * shutdown request. Never throws; protocol-level problems are answered
 * with error frames and a broken pipe exits. @return process exit code.
 */
int runWorkerMain();

} // namespace gemini::api

#endif // GEMINI_API_WORKER_HH
