#include "src/api/worker.hh"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <utility>

#include "src/api/json_reader.hh"
#include "src/api/results.hh"
#include "src/api/spec.hh"
#include "src/common/fault_injection.hh"
#include "src/common/subprocess.hh"
#include "src/mapping/engine.hh"

namespace gemini::api {

using common::json::Value;

namespace {

/** Cadence of the worker's I'm-alive frames during an evaluation. */
constexpr auto kHeartbeatInterval = std::chrono::milliseconds(100);

std::string
seedToHex(std::uint64_t seed)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016" PRIx64, seed);
    return buf;
}

bool
seedFromHex(const std::string &text, std::uint64_t &out)
{
    if (text.rfind("0x", 0) != 0)
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str() + 2, &end, 16);
    return end && *end == '\0';
}

const char *
requestKindName(WorkerRequest::Kind k)
{
    switch (k) {
      case WorkerRequest::Kind::Init: return "init";
      case WorkerRequest::Kind::Eval: return "eval";
      case WorkerRequest::Kind::Shutdown: return "shutdown";
    }
    return "?";
}

const char *
responseKindName(WorkerResponse::Kind k)
{
    switch (k) {
      case WorkerResponse::Kind::Ready: return "ready";
      case WorkerResponse::Kind::Heartbeat: return "heartbeat";
      case WorkerResponse::Kind::Result: return "result";
      case WorkerResponse::Kind::Error: return "error";
    }
    return "?";
}

} // namespace

std::string
WorkerRequest::toText() const
{
    Value v = Value::object();
    v.set("kind", requestKindName(kind));
    v.set("seq", seq);
    if (kind == Kind::Init) {
        v.set("spec", specText);
    } else if (kind == Kind::Eval) {
        v.set("index", static_cast<std::uint64_t>(index));
        v.set("rung", rung);
        v.set("iters", iters);
        v.set("chains", chains);
        v.set("seed", seedToHex(seed));
        v.set("arch", archConfigToJson(arch));
        Value warm = Value::array();
        for (const mapping::LpMapping &m : warmStarts)
            warm.push(lpMappingToJson(m));
        v.set("warm_starts", std::move(warm));
    }
    return v.dump();
}

bool
WorkerRequest::fromText(const std::string &text, WorkerRequest &out,
                        std::string *error)
{
    const std::optional<Value> v = common::json::parse(text, error);
    if (!v) {
        if (error)
            *error = "request: JSON syntax error at " + *error;
        return false;
    }
    WorkerRequest rq;
    ObjectReader r(*v, "request", error);
    std::string kind;
    r.getString("kind", kind);
    if (!r.ok())
        return false;
    if (kind == "init") {
        rq.kind = Kind::Init;
    } else if (kind == "eval") {
        rq.kind = Kind::Eval;
    } else if (kind == "shutdown") {
        rq.kind = Kind::Shutdown;
    } else {
        if (error && error->empty())
            *error = "request.kind: unknown kind \"" + kind + "\"";
        return false;
    }
    r.getInt("seq", rq.seq);
    if (rq.kind == Kind::Init) {
        r.getString("spec", rq.specText);
    } else if (rq.kind == Kind::Eval) {
        r.getInt("index", rq.index);
        r.getInt("rung", rq.rung);
        r.getInt("iters", rq.iters);
        r.getInt("chains", rq.chains);
        std::string seed_hex = seedToHex(0);
        r.getString("seed", seed_hex);
        if (r.ok() && !seedFromHex(seed_hex, rq.seed)) {
            if (error && error->empty())
                *error = "request.seed: expected a 0x-prefixed hex string";
            return false;
        }
        if (const Value *archv = r.require("arch")) {
            if (!archConfigFromJson(*archv, "request.arch", rq.arch, error))
                return false;
        }
        if (const Value *warm = r.child("warm_starts")) {
            if (!warm->isArray()) {
                if (error && error->empty())
                    *error = "request.warm_starts: expected an array";
                return false;
            }
            std::size_t i = 0;
            for (const Value &mv : warm->asArray()) {
                mapping::LpMapping m;
                if (!lpMappingFromJson(mv,
                                       "request.warm_starts[" +
                                           std::to_string(i) + "]",
                                       m, error))
                    return false;
                rq.warmStarts.push_back(std::move(m));
                ++i;
            }
        }
    }
    if (!r.finish())
        return false;
    out = std::move(rq);
    return true;
}

std::string
WorkerResponse::toText() const
{
    Value v = Value::object();
    v.set("kind", responseKindName(kind));
    v.set("seq", seq);
    if (kind == Kind::Error) {
        v.set("message", message);
    } else if (kind == Kind::Result) {
        Value per_model = Value::array();
        for (const eval::EvalBreakdown &b : perModel)
            per_model.push(evalBreakdownToJson(b));
        v.set("per_model", std::move(per_model));
        Value maps = Value::array();
        for (const mapping::LpMapping &m : mappings)
            maps.push(lpMappingToJson(m));
        v.set("mappings", std::move(maps));
    }
    return v.dump();
}

bool
WorkerResponse::fromText(const std::string &text, WorkerResponse &out,
                         std::string *error)
{
    const std::optional<Value> v = common::json::parse(text, error);
    if (!v) {
        if (error)
            *error = "response: JSON syntax error at " + *error;
        return false;
    }
    WorkerResponse resp;
    ObjectReader r(*v, "response", error);
    std::string kind;
    r.getString("kind", kind);
    if (!r.ok())
        return false;
    if (kind == "ready") {
        resp.kind = Kind::Ready;
    } else if (kind == "heartbeat") {
        resp.kind = Kind::Heartbeat;
    } else if (kind == "result") {
        resp.kind = Kind::Result;
    } else if (kind == "error") {
        resp.kind = Kind::Error;
    } else {
        if (error && error->empty())
            *error = "response.kind: unknown kind \"" + kind + "\"";
        return false;
    }
    r.getInt("seq", resp.seq);
    r.getString("message", resp.message);
    if (const Value *per_model = r.child("per_model")) {
        if (!per_model->isArray()) {
            if (error && error->empty())
                *error = "response.per_model: expected an array";
            return false;
        }
        std::size_t i = 0;
        for (const Value &bv : per_model->asArray()) {
            eval::EvalBreakdown b;
            if (!evalBreakdownFromJson(
                    bv, "response.per_model[" + std::to_string(i) + "]", b,
                    error))
                return false;
            resp.perModel.push_back(b);
            ++i;
        }
    }
    if (const Value *maps = r.child("mappings")) {
        if (!maps->isArray()) {
            if (error && error->empty())
                *error = "response.mappings: expected an array";
            return false;
        }
        std::size_t i = 0;
        for (const Value &mv : maps->asArray()) {
            mapping::LpMapping m;
            if (!lpMappingFromJson(
                    mv, "response.mappings[" + std::to_string(i) + "]", m,
                    error))
                return false;
            resp.mappings.push_back(std::move(m));
            ++i;
        }
    }
    if (!r.finish())
        return false;
    out = std::move(resp);
    return true;
}

namespace {

/**
 * Evaluate one candidate exactly as the in-process scheduler would (see
 * MultiFidelityScheduler::runScreen/runSaRung and the flat driver):
 * throwaway engines per model, serial chains, the request's SA budget.
 */
WorkerResponse
evalCandidate(const ExperimentSpec &spec, const ResolvedExperiment &resolved,
              const WorkerRequest &rq)
{
    // Deterministic crash simulation: the acceptance tests arm these to
    // prove a poisoned candidate cannot take down the run. _Exit, not
    // abort(): die like a crash, no atexit/leak-check noise.
    if (common::fault::shouldFail("worker.crash") ||
        common::fault::shouldFail("worker.crash.cand" +
                                  std::to_string(rq.index)))
        std::_Exit(70);

    mapping::MappingOptions mo = spec.mapping;
    // Chains run serially inside a worker (bit-identical to parallel
    // chains); candidate-level parallelism is the supervisor's pool.
    mo.saThreads = 1;
    if (rq.rung == 0) {
        mo.runSa = false; // screen: stripe-only pipeline
    } else if (rq.rung >= 1) {
        mo.runSa = true;
        mo.sa.iterations = rq.iters;
        mo.sa.chains = rq.chains;
        mo.sa.seed = rq.seed;
    }
    // rung -1 (flat): the spec's full budget, options as-is.

    WorkerResponse resp;
    resp.kind = WorkerResponse::Kind::Result;
    resp.seq = rq.seq;
    const bool warm = rq.rung >= 1;
    if (warm && rq.warmStarts.size() != resolved.models.size()) {
        resp.kind = WorkerResponse::Kind::Error;
        resp.message = "eval: warm_starts count does not match models";
        return resp;
    }
    for (std::size_t m = 0; m < resolved.models.size(); ++m) {
        mapping::MappingEngine engine(resolved.models[m], rq.arch, mo);
        mapping::MappingResult res =
            warm ? engine.runFrom(rq.warmStarts[m]) : engine.run();
        resp.mappings.push_back(std::move(res.mapping));
        resp.perModel.push_back(res.total);
    }
    return resp;
}

/**
 * Run one eval request with heartbeats: the evaluation runs here while a
 * helper thread emits heartbeat frames. The helper is joined before the
 * result frame is written, so stdout only ever carries whole frames from
 * one thread at a time.
 */
WorkerResponse
evalWithHeartbeats(const ExperimentSpec &spec,
                   const ResolvedExperiment &resolved,
                   const WorkerRequest &rq)
{
    std::atomic<bool> done{false};
    std::thread beat([&] {
        auto next = std::chrono::steady_clock::now() + kHeartbeatInterval;
        while (!done.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            if (std::chrono::steady_clock::now() < next)
                continue;
            next = std::chrono::steady_clock::now() + kHeartbeatInterval;
            WorkerResponse hb;
            hb.kind = WorkerResponse::Kind::Heartbeat;
            hb.seq = rq.seq;
            if (!common::writeFrame(1, hb.toText())) {
                // Supervisor gone: nothing left to compute for.
                std::_Exit(1);
            }
        }
    });

    // Simulated hang (the `worker.heartbeat` fault site): wedge the whole
    // request — no heartbeats, no result — so the supervisor's watchdog
    // is exercised for real. Respawned workers inherit the environment
    // and wedge again, which is how the poison path is driven end-to-end.
    if (common::fault::shouldFail("worker.heartbeat")) {
        done.store(true, std::memory_order_release);
        beat.join();
        for (;;)
            std::this_thread::sleep_for(std::chrono::hours(1));
    }

    WorkerResponse resp;
    try {
        resp = evalCandidate(spec, resolved, rq);
    } catch (const std::exception &e) {
        resp.kind = WorkerResponse::Kind::Error;
        resp.seq = rq.seq;
        resp.message = std::string("eval: ") + e.what();
    } catch (...) {
        resp.kind = WorkerResponse::Kind::Error;
        resp.seq = rq.seq;
        resp.message = "eval: non-std exception";
    }
    done.store(true, std::memory_order_release);
    beat.join();
    return resp;
}

} // namespace

int
runWorkerMain()
{
    const int in_fd = 0;
    const int out_fd = 1;
    std::optional<ExperimentSpec> spec;
    std::optional<ResolvedExperiment> resolved;

    std::string frame;
    for (;;) {
        const common::FrameStatus st =
            common::readFrame(in_fd, frame, /*timeout_seconds=*/-1.0);
        if (st == common::FrameStatus::Eof)
            return 0; // supervisor closed our stdin: clean exit
        if (st != common::FrameStatus::Ok) {
            std::fprintf(stderr, "[worker] request frame %s\n",
                         common::frameStatusName(st));
            return 1;
        }

        WorkerRequest rq;
        std::string perr;
        if (!WorkerRequest::fromText(frame, rq, &perr)) {
            WorkerResponse err;
            err.kind = WorkerResponse::Kind::Error;
            err.message = "bad request: " + perr;
            if (!common::writeFrame(out_fd, err.toText()))
                return 1;
            continue;
        }

        if (rq.kind == WorkerRequest::Kind::Shutdown)
            return 0;

        if (rq.kind == WorkerRequest::Kind::Init) {
            std::string err;
            spec = ExperimentSpec::fromJsonText(rq.specText, &err);
            if (spec)
                resolved = resolveExperiment(*spec, &err);
            WorkerResponse resp;
            resp.seq = rq.seq;
            if (spec && resolved) {
                resp.kind = WorkerResponse::Kind::Ready;
            } else {
                resp.kind = WorkerResponse::Kind::Error;
                resp.message = "init: " + err;
                spec.reset();
                resolved.reset();
            }
            if (!common::writeFrame(out_fd, resp.toText()))
                return 1;
            continue;
        }

        // Eval.
        if (!resolved) {
            WorkerResponse err;
            err.kind = WorkerResponse::Kind::Error;
            err.seq = rq.seq;
            err.message = "eval before a successful init";
            if (!common::writeFrame(out_fd, err.toText()))
                return 1;
            continue;
        }
        const WorkerResponse resp = evalWithHeartbeats(*spec, *resolved, rq);
        if (!common::writeFrame(out_fd, resp.toText()))
            return 1;
    }
}

} // namespace gemini::api
