/**
 * @file
 * Multi-tenant fair-share job scheduling in front of the
 * ExplorationService. Each tenant owns a queue ordered by (priority
 * descending, submission order); across tenants a weighted
 * deficit-round-robin dispenses a bounded number of concurrent jobs
 * into the service — a tenant with weight 3 dispatches three jobs for
 * every one of a weight-1 tenant while both have work pending, and an
 * idle tenant's unused share never accumulates (its deficit resets when
 * its queue drains, the classic DRR starvation guard).
 *
 * Determinism contract: dispatch order is a pure function of the
 * submission sequence (tenants, priorities, weights) — no wall clock,
 * no thread scheduling — so with maxConcurrentJobs = 1 the *completion*
 * order is reproducible at any service thread count. The scheduler
 * tests assert exactly this.
 *
 * Admission dedup: a submission whose result is already known (the
 * service's spec-hash cache or the durable ResultStore) completes
 * instantly as a Done job without consuming a queue slot; a submission
 * identical to a still-active job of the same tenant attaches to that
 * job instead of queueing a duplicate (`deduped`).
 *
 * Every job records its rung-granular progress events with 1-based
 * sequence numbers — the daemon's event stream replays and follows this
 * log, so a watcher that reconnects mid-run sees the exact same
 * deterministic sequence an uninterrupted watcher saw.
 *
 * Crash recovery: recoverInterrupted() re-admits every orphan rung
 * journal in the store (spec from the sidecar, tenant/priority/weight
 * from the job meta) with resume semantics — a SIGKILLed daemon's
 * restart continues its tenants' work from the last completed rung.
 */

#ifndef GEMINI_API_SCHEDULER_HH
#define GEMINI_API_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/api/service.hh"
#include "src/api/store.hh"

namespace gemini::api {

struct SchedulerOptions
{
    /** Jobs running inside the service at once (the fair-share slots). */
    int maxConcurrentJobs = 1;

    /** DRR quantum added per visit, scaled by the tenant's weight. */
    int quantum = 1;

    /**
     * Admit but do not dispatch until resume() is called. Lets a batch
     * of submissions land as one atomic scheduling round — the fairness
     * tests build their queues this way, and a daemon could use it to
     * finish crash recovery before the first dispatch.
     */
    bool startPaused = false;
};

/** One admission request: who, how urgent, what. */
struct JobRequest
{
    std::string tenant = "default"; ///< [A-Za-z0-9._-]{1,64}
    int priority = 0; ///< higher runs earlier *within* the tenant
    int weight = 1;   ///< DRR share *across* tenants (>= 1)
    bool resume = false; ///< continue from the store's rung journal
    ExperimentSpec spec;
};

/** A job's externally visible state (REST status payloads). */
struct JobInfo
{
    std::string id; ///< "<16-hex-spec-hash>-<tenant>"
    std::uint64_t specHash = 0;
    std::string tenant;
    std::string name; ///< spec.name
    int priority = 0;
    int weight = 1;
    JobState state = JobState::Queued;
    bool deduped = false;   ///< this submit attached to an existing job
    bool fromCache = false; ///< served by admission dedup, never ran
    std::uint64_t submitSeq = 0;   ///< global admission order (1-based)
    std::uint64_t dispatchSeq = 0; ///< global dispatch order (0 = queued)
    std::size_t queuePosition = 0; ///< jobs ahead in the tenant queue
    std::uint64_t events = 0;      ///< progress events recorded so far
    std::string error; ///< terminal failure message (Failed only)
};

/** One recorded progress event (seq is 1-based and per job). */
struct JobEvent
{
    std::uint64_t seq = 0;
    ProgressEvent event;
};

class JobScheduler
{
  public:
    /** The service (and its optional store) must outlive the scheduler. */
    explicit JobScheduler(ExplorationService &service,
                          SchedulerOptions options = {});

    /** stop(cancelJobs = true) + join. */
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Admit a job. Returns its info — possibly already Done (admission
     * dedup) or attached to an active duplicate (`deduped`) — or
     * nullopt with an actionable message for an invalid tenant, weight,
     * or spec. Admission is synchronous and cheap; the run is not.
     */
    std::optional<JobInfo> submit(JobRequest request, std::string *error);

    std::optional<JobInfo> info(const std::string &id);

    /** Every known job, ordered by submission. */
    std::vector<JobInfo> list();

    /**
     * Cancel a job: a queued one leaves the queue immediately (terminal
     * Cancelled, no result); a running one is cancelled cooperatively
     * and drains to a valid partial result. False = unknown id.
     */
    bool cancel(const std::string &id);

    /** The terminal result; nullptr while running or cancelled-unrun. */
    std::shared_ptr<const ExperimentResult> result(const std::string &id);

    /** Events with seq > afterSeq recorded so far. */
    std::vector<JobEvent> events(const std::string &id,
                                 std::uint64_t afterSeq);

    /**
     * Block until events past afterSeq exist, the job is terminal, or
     * the timeout lapses — the long-poll behind the NDJSON stream.
     */
    std::vector<JobEvent> waitEvents(const std::string &id,
                                     std::uint64_t afterSeq,
                                     double timeoutSeconds);

    /**
     * Block until the job is terminal (timeout < 0 = forever). True if
     * terminal on return.
     */
    bool wait(const std::string &id, double timeoutSeconds = -1.0);

    /**
     * Re-admit interrupted runs found in the store (orphan journals)
     * with resume semantics. Returns how many jobs were re-admitted.
     */
    int recoverInterrupted();

    /** Start dispatching (no-op unless startPaused). */
    void resume();

    /**
     * Stop admitting and dispatching. With cancelJobs, queued jobs are
     * cancelled and running ones cancelled cooperatively; otherwise the
     * queues drain normally. Blocks until no job is running. Idempotent.
     */
    void stop(bool cancelJobs);

    bool stopping() const;

    std::size_t pendingJobs();
    std::size_t runningJobs();

  private:
    struct Job
    {
        JobRequest request;
        std::string id;
        std::uint64_t hash = 0;
        std::string canonical;
        JobState state = JobState::Queued;
        std::uint64_t submitSeq = 0;
        std::uint64_t dispatchSeq = 0;
        JobHandle handle; ///< valid once dispatched
        /// Cancel raced ahead of dispatch: apply it once the handle
        /// exists (dispatch hands off to the service outside the lock).
        bool cancelRequested = false;
        std::shared_ptr<const ExperimentResult> result;
        std::vector<ProgressEvent> events;
        std::string error;
    };

    struct Tenant
    {
        int weight = 1;
        int deficit = 0;
        std::deque<std::shared_ptr<Job>> queue;
    };

    bool terminalLocked(const Job &job) const
    {
        return job.state == JobState::Done ||
               job.state == JobState::Failed ||
               job.state == JobState::Cancelled;
    }

    std::shared_ptr<Job> findLocked(const std::string &id);
    JobInfo infoLocked(const Job &job) const;

    /** Dispatch while slots are free; the DRR core. Mutex held. */
    void pumpLocked();
    void dispatchLocked(const std::shared_ptr<Job> &job);
    void finishJobLocked(const std::shared_ptr<Job> &job);
    void reapWaitersLocked(std::vector<std::thread> &joinable);

    ExplorationService &service_;
    SchedulerOptions options_;

    mutable std::mutex mu_;
    std::condition_variable cv_; ///< any job/event state change
    bool stopping_ = false;
    bool paused_ = false;

    std::map<std::string, std::shared_ptr<Job>> jobs_; ///< by id
    std::vector<std::shared_ptr<Job>> bySubmit_;
    std::map<std::string, Tenant> tenants_;
    std::vector<std::string> rotation_; ///< tenants with pending work
    std::size_t cursor_ = 0;            ///< DRR position in rotation_
    int running_ = 0;
    std::uint64_t submitCounter_ = 0;
    std::uint64_t dispatchCounter_ = 0;

    struct Waiter
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::vector<Waiter> waiters_;
};

/** "<16-hex>-<tenant>" (the job-id convention, shared with the CLI). */
std::string jobId(std::uint64_t specHash, const std::string &tenant);

/** Tenant grammar guard: [A-Za-z0-9._-]{1,64}. */
bool validTenantName(const std::string &tenant);

} // namespace gemini::api

#endif // GEMINI_API_SCHEDULER_HH
