/**
 * @file
 * Shared deserialization helper of the API layer: typed field extraction
 * over one JSON object with key tracking and "path.to.key: reason" error
 * messages. Used by both the spec and the results readers so every wire
 * form rejects typo'd keys the same way.
 */

#ifndef GEMINI_API_JSON_READER_HH
#define GEMINI_API_JSON_READER_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/json.hh"

namespace gemini::api {

/**
 * Every getter leaves the C++ default in place when the key is absent,
 * records the key as known, and fails with a "path.key: reason" message
 * on a type mismatch. finish() turns any never-requested key into an
 * error naming the valid set — a typo'd knob must not silently run the
 * default experiment. After the first failure all getters become no-ops,
 * so callers can chain reads and check once.
 */
class ObjectReader
{
  public:
    ObjectReader(const common::json::Value &v, std::string path,
                 std::string *error)
        : v_(v), path_(std::move(path)), error_(error)
    {
        if (!v_.isObject())
            fail("", "expected an object");
    }

    bool ok() const { return !failed_; }
    const std::string &path() const { return path_; }

    bool
    getDouble(const char *key, double &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (!f->isNumber())
            return fail(key, "expected a number");
        out = f->asNumber();
        return true;
    }

    /**
     * A number that may legitimately be infinite (DSE objectives of
     * infeasible candidates): the wire form spells infinity as null.
     */
    bool
    getExtendedDouble(const char *key, double &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (f->isNull()) {
            out = std::numeric_limits<double>::infinity();
            return true;
        }
        if (!f->isNumber())
            return fail(key, "expected a number or null (= infinity)");
        out = f->asNumber();
        return true;
    }

    template <typename Int>
    bool
    getInt(const char *key, Int &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (!f->isNumber())
            return fail(key, "expected an integer");
        const double d = f->asNumber();
        if (d != std::nearbyint(d) || std::abs(d) > 9.007199254740992e15)
            return fail(key, "expected an integer (within +/-2^53)");
        if (d < static_cast<double>(std::numeric_limits<Int>::lowest()) ||
            d > static_cast<double>(std::numeric_limits<Int>::max()) ||
            (std::is_unsigned_v<Int> && d < 0))
            return fail(key, "integer out of range for this field");
        out = static_cast<Int>(d);
        return true;
    }

    bool
    getBool(const char *key, bool &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (!f->isBool())
            return fail(key, "expected true or false");
        out = f->asBool();
        return true;
    }

    bool
    getString(const char *key, std::string &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (!f->isString())
            return fail(key, "expected a string");
        out = f->asString();
        return true;
    }

    bool
    getDoubleList(const char *key, std::vector<double> &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (!f->isArray())
            return fail(key, "expected an array of numbers");
        std::vector<double> parsed;
        for (const common::json::Value &e : f->asArray()) {
            if (!e.isNumber())
                return fail(key, "expected an array of numbers");
            parsed.push_back(e.asNumber());
        }
        out = std::move(parsed);
        return true;
    }

    template <typename Int>
    bool
    getIntList(const char *key, std::vector<Int> &out)
    {
        const common::json::Value *f = request(key);
        if (!f)
            return ok();
        if (!f->isArray())
            return fail(key, "expected an array of integers");
        std::vector<Int> parsed;
        for (const common::json::Value &e : f->asArray()) {
            if (!e.isNumber() ||
                e.asNumber() != std::nearbyint(e.asNumber()))
                return fail(key, "expected an array of integers");
            const double d = e.asNumber();
            // Same range guard as getInt: an out-of-range double-to-int
            // cast is undefined behavior, not a saturation.
            if (std::abs(d) > 9.007199254740992e15 ||
                d < static_cast<double>(std::numeric_limits<Int>::lowest()) ||
                d > static_cast<double>(std::numeric_limits<Int>::max()) ||
                (std::is_unsigned_v<Int> && d < 0))
                return fail(key, "integer out of range for this field");
            parsed.push_back(static_cast<Int>(d));
        }
        out = std::move(parsed);
        return true;
    }

    /** Raw sub-value access (still key-tracked); nullptr when absent. */
    const common::json::Value *
    child(const char *key)
    {
        return request(key);
    }

    /** Like child(), but a missing key is an error. */
    const common::json::Value *
    require(const char *key)
    {
        const common::json::Value *f = request(key);
        if (!f && ok())
            fail(key, "required key is missing");
        return f;
    }

    /** Error on any key the schema never asked for. */
    bool
    finish()
    {
        if (failed_)
            return false;
        for (const auto &[key, value] : v_.asObject()) {
            if (std::find(requested_.begin(), requested_.end(), key) !=
                requested_.end())
                continue;
            std::string valid;
            for (std::size_t i = 0; i < requested_.size(); ++i) {
                if (i)
                    valid += ", ";
                valid += requested_[i];
            }
            return fail(key.c_str(),
                        "unknown key (valid keys: " + valid + ")");
        }
        return true;
    }

  private:
    const common::json::Value *
    request(const char *key)
    {
        if (failed_)
            return nullptr;
        requested_.emplace_back(key);
        return v_.isObject() ? v_.find(key) : nullptr;
    }

    bool
    fail(const char *key, const std::string &reason)
    {
        failed_ = true;
        if (error_ && error_->empty()) {
            *error_ = path_;
            if (key && *key)
                *error_ += std::string(".") + key;
            *error_ += ": " + reason;
        }
        return false;
    }

    const common::json::Value &v_;
    std::string path_;
    std::string *error_;
    std::vector<std::string> requested_;
    bool failed_ = false;
};

} // namespace gemini::api

#endif // GEMINI_API_JSON_READER_HH
