#include "src/api/service.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/api/json_reader.hh"
#include "src/api/results.hh"
#include "src/api/store.hh"
#include "src/api/supervisor.hh"
#include "src/common/subprocess.hh"
#include "src/common/fault_injection.hh"
#include "src/common/logging.hh"
#include "src/cost/cost_stack.hh"

namespace gemini::api {

using common::json::Value;

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

namespace {

const char *
errorKindName(ExperimentResult::ErrorKind k)
{
    switch (k) {
      case ExperimentResult::ErrorKind::None: return "none";
      case ExperimentResult::ErrorKind::InvalidSpec: return "invalid_spec";
      case ExperimentResult::ErrorKind::Runtime: return "runtime";
    }
    return "?";
}

bool
errorKindFromName(const std::string &name, ExperimentResult::ErrorKind &out)
{
    if (name == "none")
        out = ExperimentResult::ErrorKind::None;
    else if (name == "invalid_spec")
        out = ExperimentResult::ErrorKind::InvalidSpec;
    else if (name == "runtime")
        out = ExperimentResult::ErrorKind::Runtime;
    else
        return false;
    return true;
}

} // namespace

Value
ExperimentResult::toJson() const
{
    char hash[32];
    std::snprintf(hash, sizeof hash, "0x%016" PRIx64, specHash);

    Value v = Value::object();
    v.set("schema_version", kSchemaVersion);
    v.set("name", spec.name);
    v.set("spec_hash", hash);
    v.set("from_cache", fromCache);
    v.set("cancelled", cancelled);
    v.set("truncated", truncated);
    v.set("error", error);
    v.set("error_kind", errorKindName(errorKind));
    v.set("spec", spec.toJson());
    if (failed())
        return v;
    if (spec.mode == ExperimentSpec::Mode::Dse) {
        v.set("dse", dseResultToJson(dse));
    } else {
        v.set("arch", archConfigToJson(mapArch));
        v.set("mc", costBreakdownToJson(mapArchMc));
        Value arr = Value::array();
        for (const mapping::MappingResult &m : mappings)
            arr.push(mappingResultToJson(m));
        v.set("mappings", std::move(arr));
    }
    return v;
}

std::optional<ExperimentResult>
ExperimentResult::fromJson(const Value &v, std::string *error)
{
    ObjectReader r(v, "result", error);
    ExperimentResult res;

    int schema = kSchemaVersion;
    r.getInt("schema_version", schema);
    if (r.ok() && schema > kSchemaVersion) {
        if (error && error->empty())
            *error = "result.schema_version: written by a newer build (" +
                     std::to_string(schema) + ")";
        return std::nullopt;
    }

    std::string ignored_name;
    r.getString("name", ignored_name); // mirror of spec.name

    std::string hash_hex;
    r.getString("spec_hash", hash_hex);
    if (r.ok()) {
        char *end = nullptr;
        if (hash_hex.rfind("0x", 0) == 0)
            res.specHash = std::strtoull(hash_hex.c_str() + 2, &end, 16);
        if (hash_hex.rfind("0x", 0) != 0 || *end != '\0') {
            if (error && error->empty())
                *error = "result.spec_hash: expected a 0x-prefixed hex "
                         "string";
            return std::nullopt;
        }
    }

    r.getBool("from_cache", res.fromCache);
    r.getBool("cancelled", res.cancelled);
    r.getBool("truncated", res.truncated);
    r.getString("error", res.error);
    std::string kind = "none";
    r.getString("error_kind", kind);
    if (r.ok() && !errorKindFromName(kind, res.errorKind)) {
        if (error && error->empty())
            *error = "result.error_kind: unknown kind \"" + kind + "\"";
        return std::nullopt;
    }

    if (const Value *specv = r.require("spec")) {
        std::optional<ExperimentSpec> spec =
            ExperimentSpec::fromJson(*specv, error);
        if (!spec)
            return std::nullopt;
        res.spec = std::move(*spec);
    }

    const Value *dsev = r.child("dse");
    const Value *archv = r.child("arch");
    const Value *mcv = r.child("mc");
    const Value *mappingsv = r.child("mappings");
    if (!r.finish())
        return std::nullopt;

    if (res.failed())
        return res; // failed results carry no payload

    if (res.spec.mode == ExperimentSpec::Mode::Dse) {
        if (!dsev) {
            if (error && error->empty())
                *error = "result.dse: required for a dse-mode result";
            return std::nullopt;
        }
        if (!dseResultFromJson(*dsev, "result.dse", res.dse, error))
            return std::nullopt;
    } else {
        if (!archv || !mcv || !mappingsv) {
            if (error && error->empty())
                *error = "result: map-mode results need arch, mc and "
                         "mappings";
            return std::nullopt;
        }
        if (!archConfigFromJson(*archv, "result.arch", res.mapArch, error))
            return std::nullopt;
        if (!costBreakdownFromJson(*mcv, "result.mc", res.mapArchMc,
                                   error))
            return std::nullopt;
        if (!mappingsv->isArray()) {
            if (error && error->empty())
                *error = "result.mappings: expected an array";
            return std::nullopt;
        }
        std::size_t i = 0;
        for (const Value &mv : mappingsv->asArray()) {
            mapping::MappingResult m;
            if (!mappingResultFromJson(
                    mv, "result.mappings[" + std::to_string(i) + "]", m,
                    error))
                return std::nullopt;
            res.mappings.push_back(std::move(m));
            ++i;
        }
    }
    return res;
}

/**
 * Shared state between a job's handle copies and its controller thread.
 * The result pointer doubles as the "finished" flag.
 */
struct JobHandle::Shared
{
    mutable std::mutex mu;
    std::condition_variable done;
    JobState state = JobState::Queued;
    common::StopSource stop;
    std::uint64_t specHash = 0;
    std::shared_ptr<const ExperimentResult> result;
    std::exception_ptr exception; ///< original throw of a Runtime failure

    void
    finish(JobState final_state, std::shared_ptr<const ExperimentResult> r)
    {
        std::lock_guard lock(mu);
        state = final_state;
        result = std::move(r);
        done.notify_all();
    }
};

JobState
JobHandle::state() const
{
    std::lock_guard lock(state_->mu);
    return state_->state;
}

std::uint64_t
JobHandle::specHash() const
{
    return state_->specHash;
}

void
JobHandle::cancel()
{
    state_->stop.requestStop();
}

const ExperimentResult &
JobHandle::wait()
{
    std::unique_lock lock(state_->mu);
    state_->done.wait(lock, [this] { return state_->result != nullptr; });
    return *state_->result;
}

std::shared_ptr<const ExperimentResult>
JobHandle::result() const
{
    std::lock_guard lock(state_->mu);
    return state_->result;
}

void
JobHandle::rethrow()
{
    const ExperimentResult &r = wait();
    std::exception_ptr ep;
    {
        std::lock_guard lock(state_->mu);
        ep = state_->exception;
    }
    if (ep)
        std::rethrow_exception(ep);
    if (r.errorKind == ExperimentResult::ErrorKind::InvalidSpec)
        throw std::invalid_argument(r.error);
}

ExplorationService::ExplorationService(int threads,
                                       std::shared_ptr<ResultStore> store)
    : pool_(threads <= 0 ? 0 : static_cast<std::size_t>(threads)),
      store_(std::move(store))
{
}

ExplorationService::~ExplorationService()
{
    std::vector<Controller> controllers;
    {
        std::lock_guard lock(mu_);
        controllers.swap(controllers_);
    }
    for (Controller &c : controllers)
        c.thread.join();
}

void
ExplorationService::reapControllersLocked(std::vector<std::thread> &joinable)
{
    // Long-lived services submit many jobs; finished controllers must
    // not accumulate as joinable handles until destruction. The done
    // flag is set as the controller's last action, so join() below
    // blocks at most for a thread epilogue.
    auto keep = controllers_.begin();
    for (auto it = controllers_.begin(); it != controllers_.end(); ++it) {
        if (it->done->load(std::memory_order_acquire)) {
            joinable.push_back(std::move(it->thread));
        } else {
            // Guard against self-move: assigning a joinable std::thread
            // onto itself terminates.
            if (keep != it)
                *keep = std::move(*it);
            ++keep;
        }
    }
    controllers_.erase(keep, controllers_.end());
}

JobHandle
ExplorationService::submit(ExperimentSpec spec, ProgressFn progress)
{
    SubmitOptions options;
    options.progress = std::move(progress);
    return submit(std::move(spec), std::move(options));
}

JobHandle
ExplorationService::submit(ExperimentSpec spec, SubmitOptions options)
{
    // canonicalText(), not toJson().canonical(): execution-control knobs
    // (the deadline) must not change the experiment's identity.
    const std::string canonical = spec.canonicalText();
    auto shared = std::make_shared<JobHandle::Shared>();
    shared->specHash = common::json::fnv1a64(canonical);

    std::vector<std::thread> finished;
    {
        std::lock_guard lock(mu_);
        reapControllersLocked(finished);
        const auto hit = cache_.find(shared->specHash);
        // The canonical-text comparison guards against 64-bit hash
        // collisions: a colliding different spec runs for real instead
        // of silently receiving another experiment's result.
        if (hit != cache_.end() &&
            hit->second.canonicalSpec == canonical) {
            // Identical resubmission: serve the cached result instantly.
            // The copy exists only to set the fromCache marker.
            auto cached =
                std::make_shared<ExperimentResult>(*hit->second.result);
            cached->fromCache = true;
            shared->state = JobState::Done;
            shared->result = std::move(cached);
        }
    }
    for (std::thread &t : finished)
        t.join();

    if (!shared->result && store_) {
        // Memory miss: consult the durable store. A hit warms the
        // in-memory cache so later resubmissions skip the disk.
        if (std::shared_ptr<const ExperimentResult> stored =
                store_->get(shared->specHash, canonical)) {
            {
                std::lock_guard lock(mu_);
                cache_.emplace(shared->specHash,
                               CacheEntry{canonical, stored});
            }
            auto cached = std::make_shared<ExperimentResult>(*stored);
            cached->fromCache = true;
            shared->state = JobState::Done;
            shared->result = std::move(cached);
        }
    }
    if (shared->result)
        return JobHandle(std::move(shared));

    Controller controller;
    controller.done = std::make_shared<std::atomic<bool>>(false);
    controller.thread =
        std::thread([this, shared, done = controller.done,
                     spec = std::move(spec),
                     options = std::move(options)]() mutable {
            runJob(shared, std::move(spec), std::move(options));
            done->store(true, std::memory_order_release);
        });
    {
        std::lock_guard lock(mu_);
        controllers_.push_back(std::move(controller));
    }
    return JobHandle(std::move(shared));
}

void
ExplorationService::runJob(std::shared_ptr<JobHandle::Shared> job,
                           ExperimentSpec spec, SubmitOptions options)
{
    {
        std::lock_guard lock(job->mu);
        job->state = JobState::Running;
    }

    auto result = std::make_shared<ExperimentResult>();
    result->specHash = job->specHash;

    std::string error;
    std::optional<ResolvedExperiment> resolved =
        resolveExperiment(spec, &error);
    result->spec = std::move(spec);
    if (!resolved) {
        result->error = std::move(error);
        result->errorKind = ExperimentResult::ErrorKind::InvalidSpec;
        job->finish(JobState::Failed, std::move(result));
        return;
    }

    try {
        // Failpoint for the crash/failure matrix: lets tests exercise a
        // run that throws after validation passed.
        common::fault::throwIfDue("service.run");
        runJobBody(job, *result, options, *resolved);
    } catch (const std::exception &e) {
        {
            std::lock_guard lock(job->mu);
            job->exception = std::current_exception();
        }
        result->error = e.what();
        result->errorKind = ExperimentResult::ErrorKind::Runtime;
        job->finish(JobState::Failed, std::move(result));
        return;
    } catch (...) {
        {
            std::lock_guard lock(job->mu);
            job->exception = std::current_exception();
        }
        result->error = "run threw a non-std::exception";
        result->errorKind = ExperimentResult::ErrorKind::Runtime;
        job->finish(JobState::Failed, std::move(result));
        return;
    }

    const JobState final_state =
        result->cancelled ? JobState::Cancelled : JobState::Done;
    if (final_state == JobState::Done && !result->truncated) {
        {
            std::lock_guard lock(mu_);
            cache_.emplace(job->specHash,
                           CacheEntry{result->spec.canonicalText(),
                                      result});
        }
        if (store_) {
            std::string serr;
            if (store_->put(*result, &serr))
                store_->removeJournal(job->specHash); // spent: run is done
            else
                GEMINI_WARN("store: result not persisted: ", serr);
        }
    }
    // Truncated (deadline) results are deliberately NOT cached or
    // stored: they are valid but incomplete, and their journal stays so
    // a resume with more time continues the run.
    job->finish(final_state, std::move(result));
}

void
ExplorationService::runJobBody(const std::shared_ptr<JobHandle::Shared> &job,
                               ExperimentResult &result,
                               const SubmitOptions &options,
                               const ResolvedExperiment &resolved)
{
    const ExperimentSpec &s = result.spec;
    common::StopToken stop = job->stop.token();
    const ProgressFn &progress = options.progress;

    if (s.mode == ExperimentSpec::Mode::Dse) {
        dse::DseOptions dopts;
        dopts.axes = s.axes;
        dopts.schedule = s.schedule;
        dopts.maxCandidates = s.maxCandidates;
        dopts.alpha = s.alpha;
        dopts.beta = s.beta;
        dopts.gamma = s.gamma;
        dopts.mapping = s.mapping;
        dopts.costParams = s.costParams;
        dopts.threads = s.threads;
        dopts.models.reserve(resolved.models.size());
        for (const dnn::Graph &g : resolved.models)
            dopts.models.push_back(&g);
        dopts.stop = stop;
        dopts.progress = progress;
        dopts.pool = &pool_;
        dopts.deadlineSeconds = s.deadlineSeconds;
        if (store_) {
            // Crash safety: the spec sidecar enables `gemini resume
            // <hash>`, the journal makes the run itself resumable.
            store_->putSpec(s, job->specHash);
            dopts.journalPath = store_->journalPath(job->specHash);
            dopts.journalTag = job->specHash;
            dopts.resume = options.resume;
        }

        // Supervised execution: evaluations run in worker subprocesses
        // behind a supervisor. Must outlive runDse; if the first worker
        // cannot be brought up, degrade to in-process rather than fail
        // the job (winners are bit-identical either way).
        std::unique_ptr<WorkerSupervisor> supervisor;
        if (s.execution.mode == ExecutionSpec::Mode::Workers) {
            SupervisorOptions sopts;
            sopts.workers = s.execution.workers > 0
                                ? s.execution.workers
                                : static_cast<int>(pool_.threadCount());
            sopts.maxRetries = s.execution.maxRetries;
            sopts.candidateDeadlineSeconds =
                s.execution.candidateDeadlineSeconds;
            sopts.candidateRssMiB = s.execution.candidateRssMiB;
            sopts.specText = s.toJson().dump();
            const char *bin = std::getenv("GEMINI_WORKER_BIN");
            sopts.workerArgv = {bin && *bin ? std::string(bin)
                                            : common::selfExePath(),
                                "worker"};
            auto sup = std::make_unique<WorkerSupervisor>(sopts);
            std::string serr;
            if (sup->start(&serr)) {
                supervisor = std::move(sup);
                dopts.execution = dse::ExecutionMode::Workers;
                dopts.remoteEval =
                    [sup = supervisor.get()](
                        const dse::RemoteEvalRequest &rq) {
                        return sup->evaluate(rq);
                    };
            } else {
                GEMINI_WARN("worker mode unavailable (", serr,
                            "); degrading to in-process execution");
            }
        }

        result.dse = dse::runDse(dopts);
        result.cancelled = result.dse.stats.cancelled;
        result.truncated = result.dse.stats.truncated;
    } else {
        // Map mode: one engine run per model, driven serially from this
        // controller (chain-level parallelism inside the engine is the
        // spec's sa_threads knob). Progress is one entered/finished pair
        // per model — serial, hence deterministic.
        if (s.deadlineSeconds > 0.0) {
            // The deadline arms a local copy of the token; engines see it
            // through MappingOptions::stop and drain at chain boundaries.
            stop = stop.withDeadline(
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(s.deadlineSeconds)));
        }
        result.mapArch = *resolved.archConfig;
        result.mapArchMc =
            cost::McEvaluator(s.costParams).evaluate(result.mapArch);
        for (std::size_t i = 0; i < resolved.models.size(); ++i) {
            const dnn::Graph &model = resolved.models[i];
            if (progress) {
                ProgressEvent entered;
                entered.kind = ProgressEvent::Kind::RungEntered;
                entered.rung = "map:" + model.name();
                entered.entered = 1;
                entered.bestObjective =
                    std::numeric_limits<double>::infinity();
                progress(entered);
            }
            mapping::MappingOptions mo = s.mapping;
            mo.stop = stop;
            mapping::MappingEngine engine(model, *resolved.archConfig, mo);
            result.mappings.push_back(engine.run());
            if (progress) {
                const mapping::MappingResult &mr = result.mappings.back();
                ProgressEvent finished;
                finished.kind = ProgressEvent::Kind::RungFinished;
                finished.rung = "map:" + model.name();
                finished.entered = 1;
                finished.advanced = 1;
                finished.bestObjective = cost::CostStack::saCost(
                    mr.groups, s.beta, s.gamma);
                progress(finished);
            }
        }
        result.cancelled = stop.cancelRequested();
        result.truncated = stop.deadlineExpired();
    }
}

std::shared_ptr<const ExperimentResult>
ExplorationService::lookupCached(const ExperimentSpec &spec)
{
    const std::string canonical = spec.canonicalText();
    const std::uint64_t hash = common::json::fnv1a64(canonical);
    std::shared_ptr<const ExperimentResult> found;
    {
        std::lock_guard lock(mu_);
        const auto hit = cache_.find(hash);
        if (hit != cache_.end() && hit->second.canonicalSpec == canonical)
            found = hit->second.result;
    }
    if (!found && store_) {
        found = store_->get(hash, canonical);
        if (found) {
            std::lock_guard lock(mu_);
            cache_.emplace(hash, CacheEntry{canonical, found});
        }
    }
    if (!found)
        return nullptr;
    auto marked = std::make_shared<ExperimentResult>(*found);
    marked->fromCache = true;
    return marked;
}

std::size_t
ExplorationService::cacheSize() const
{
    std::lock_guard lock(mu_);
    return cache_.size();
}

void
ExplorationService::clearCache()
{
    std::lock_guard lock(mu_);
    cache_.clear();
}

} // namespace gemini::api
