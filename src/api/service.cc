#include "src/api/service.hh"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/api/results.hh"
#include "src/cost/cost_stack.hh"

namespace gemini::api {

using common::json::Value;

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

Value
ExperimentResult::toJson() const
{
    char hash[32];
    std::snprintf(hash, sizeof hash, "0x%016" PRIx64, specHash);

    Value v = Value::object();
    v.set("schema_version", kSchemaVersion);
    v.set("name", spec.name);
    v.set("spec_hash", hash);
    v.set("from_cache", fromCache);
    v.set("cancelled", cancelled);
    v.set("error", error);
    v.set("spec", spec.toJson());
    if (failed())
        return v;
    if (spec.mode == ExperimentSpec::Mode::Dse) {
        v.set("dse", dseResultToJson(dse));
    } else {
        v.set("arch", archConfigToJson(mapArch));
        v.set("mc", costBreakdownToJson(mapArchMc));
        Value arr = Value::array();
        for (const mapping::MappingResult &m : mappings)
            arr.push(mappingResultToJson(m));
        v.set("mappings", std::move(arr));
    }
    return v;
}

/**
 * Shared state between a job's handle copies and its controller thread.
 * The result pointer doubles as the "finished" flag.
 */
struct JobHandle::Shared
{
    mutable std::mutex mu;
    std::condition_variable done;
    JobState state = JobState::Queued;
    common::StopSource stop;
    std::uint64_t specHash = 0;
    std::shared_ptr<const ExperimentResult> result;

    void
    finish(JobState final_state, std::shared_ptr<const ExperimentResult> r)
    {
        std::lock_guard lock(mu);
        state = final_state;
        result = std::move(r);
        done.notify_all();
    }
};

JobState
JobHandle::state() const
{
    std::lock_guard lock(state_->mu);
    return state_->state;
}

std::uint64_t
JobHandle::specHash() const
{
    return state_->specHash;
}

void
JobHandle::cancel()
{
    state_->stop.requestStop();
}

const ExperimentResult &
JobHandle::wait()
{
    std::unique_lock lock(state_->mu);
    state_->done.wait(lock, [this] { return state_->result != nullptr; });
    return *state_->result;
}

std::shared_ptr<const ExperimentResult>
JobHandle::result() const
{
    std::lock_guard lock(state_->mu);
    return state_->result;
}

ExplorationService::ExplorationService(int threads)
    : pool_(threads <= 0 ? 0 : static_cast<std::size_t>(threads))
{
}

ExplorationService::~ExplorationService()
{
    std::vector<Controller> controllers;
    {
        std::lock_guard lock(mu_);
        controllers.swap(controllers_);
    }
    for (Controller &c : controllers)
        c.thread.join();
}

void
ExplorationService::reapControllersLocked(std::vector<std::thread> &joinable)
{
    // Long-lived services submit many jobs; finished controllers must
    // not accumulate as joinable handles until destruction. The done
    // flag is set as the controller's last action, so join() below
    // blocks at most for a thread epilogue.
    auto keep = controllers_.begin();
    for (auto it = controllers_.begin(); it != controllers_.end(); ++it) {
        if (it->done->load(std::memory_order_acquire)) {
            joinable.push_back(std::move(it->thread));
        } else {
            // Guard against self-move: assigning a joinable std::thread
            // onto itself terminates.
            if (keep != it)
                *keep = std::move(*it);
            ++keep;
        }
    }
    controllers_.erase(keep, controllers_.end());
}

JobHandle
ExplorationService::submit(ExperimentSpec spec, ProgressFn progress)
{
    const std::string canonical = spec.toJson().canonical();
    auto shared = std::make_shared<JobHandle::Shared>();
    shared->specHash = common::json::fnv1a64(canonical);

    std::vector<std::thread> finished;
    {
        std::lock_guard lock(mu_);
        reapControllersLocked(finished);
        const auto hit = cache_.find(shared->specHash);
        // The canonical-text comparison guards against 64-bit hash
        // collisions: a colliding different spec runs for real instead
        // of silently receiving another experiment's result.
        if (hit != cache_.end() &&
            hit->second.canonicalSpec == canonical) {
            // Identical resubmission: serve the cached result instantly.
            // The copy exists only to set the fromCache marker.
            auto cached =
                std::make_shared<ExperimentResult>(*hit->second.result);
            cached->fromCache = true;
            shared->state = JobState::Done;
            shared->result = std::move(cached);
        }
    }
    for (std::thread &t : finished)
        t.join();
    if (shared->result)
        return JobHandle(std::move(shared));

    Controller controller;
    controller.done = std::make_shared<std::atomic<bool>>(false);
    controller.thread =
        std::thread([this, shared, done = controller.done,
                     spec = std::move(spec),
                     progress = std::move(progress)]() mutable {
            runJob(shared, std::move(spec), std::move(progress));
            done->store(true, std::memory_order_release);
        });
    {
        std::lock_guard lock(mu_);
        controllers_.push_back(std::move(controller));
    }
    return JobHandle(std::move(shared));
}

void
ExplorationService::runJob(std::shared_ptr<JobHandle::Shared> job,
                           ExperimentSpec spec, ProgressFn progress)
{
    {
        std::lock_guard lock(job->mu);
        job->state = JobState::Running;
    }

    auto result = std::make_shared<ExperimentResult>();
    result->specHash = job->specHash;

    std::string error;
    std::optional<ResolvedExperiment> resolved =
        resolveExperiment(spec, &error);
    result->spec = std::move(spec);
    if (!resolved) {
        result->error = std::move(error);
        job->finish(JobState::Failed, std::move(result));
        return;
    }

    const ExperimentSpec &s = result->spec;
    const common::StopToken stop = job->stop.token();

    if (s.mode == ExperimentSpec::Mode::Dse) {
        dse::DseOptions options;
        options.axes = s.axes;
        options.schedule = s.schedule;
        options.maxCandidates = s.maxCandidates;
        options.alpha = s.alpha;
        options.beta = s.beta;
        options.gamma = s.gamma;
        options.mapping = s.mapping;
        options.costParams = s.costParams;
        options.threads = s.threads;
        options.models.reserve(resolved->models.size());
        for (const dnn::Graph &g : resolved->models)
            options.models.push_back(&g);
        options.stop = stop;
        options.progress = progress;
        options.pool = &pool_;

        result->dse = dse::runDse(options);
        result->cancelled = result->dse.stats.cancelled;
    } else {
        // Map mode: one engine run per model, driven serially from this
        // controller (chain-level parallelism inside the engine is the
        // spec's sa_threads knob). Progress is one entered/finished pair
        // per model — serial, hence deterministic.
        result->mapArch = *resolved->archConfig;
        result->mapArchMc =
            cost::McEvaluator(s.costParams).evaluate(result->mapArch);
        for (std::size_t i = 0; i < resolved->models.size(); ++i) {
            const dnn::Graph &model = resolved->models[i];
            if (progress) {
                ProgressEvent entered;
                entered.kind = ProgressEvent::Kind::RungEntered;
                entered.rung = "map:" + model.name();
                entered.entered = 1;
                entered.bestObjective =
                    std::numeric_limits<double>::infinity();
                progress(entered);
            }
            mapping::MappingOptions mo = s.mapping;
            mo.stop = stop;
            mapping::MappingEngine engine(model, *resolved->archConfig, mo);
            result->mappings.push_back(engine.run());
            if (progress) {
                const mapping::MappingResult &mr = result->mappings.back();
                ProgressEvent finished;
                finished.kind = ProgressEvent::Kind::RungFinished;
                finished.rung = "map:" + model.name();
                finished.entered = 1;
                finished.advanced = 1;
                finished.bestObjective = cost::CostStack::saCost(
                    mr.groups, s.beta, s.gamma);
                progress(finished);
            }
        }
        result->cancelled = stop.stopRequested();
    }

    const JobState final_state =
        result->cancelled ? JobState::Cancelled : JobState::Done;
    if (final_state == JobState::Done) {
        std::lock_guard lock(mu_);
        cache_.emplace(job->specHash,
                       CacheEntry{result->spec.toJson().canonical(),
                                  result});
    }
    job->finish(final_state, std::move(result));
}

std::size_t
ExplorationService::cacheSize() const
{
    std::lock_guard lock(mu_);
    return cache_.size();
}

void
ExplorationService::clearCache()
{
    std::lock_guard lock(mu_);
    cache_.clear();
}

} // namespace gemini::api
