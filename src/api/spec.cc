#include "src/api/spec.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/api/json_reader.hh"
#include "src/api/results.hh"
#include "src/arch/presets.hh"
#include "src/dnn/parser.hh"
#include "src/dnn/zoo.hh"

namespace gemini::api {

using common::json::Array;
using common::json::Object;
using common::json::Value;

namespace {

bool
readObjective(const Value &v, const std::string &path, ExperimentSpec &spec,
              std::string *error)
{
    ObjectReader r(v, path, error);
    r.getDouble("alpha", spec.alpha);
    r.getDouble("beta", spec.beta);
    r.getDouble("gamma", spec.gamma);
    return r.finish();
}

bool
readModels(const Value &v, const std::string &path, ExperimentSpec &spec,
           std::string *error)
{
    if (!v.isArray()) {
        if (error && error->empty())
            *error = path + ": expected an array of model objects";
        return false;
    }
    spec.models.clear();
    std::size_t i = 0;
    for (const Value &e : v.asArray()) {
        ObjectReader r(e, path + "[" + std::to_string(i) + "]", error);
        ModelSpec m;
        r.getString("zoo", m.zoo);
        r.getString("file", m.file);
        if (!r.finish())
            return false;
        spec.models.push_back(std::move(m));
        ++i;
    }
    return true;
}

bool
readArch(const Value &v, const std::string &path, ExperimentSpec &spec,
         std::string *error)
{
    ObjectReader r(v, path, error);
    r.getString("preset", spec.arch.preset);
    if (const Value *cfg = r.child("config")) {
        arch::ArchConfig parsed;
        if (!archConfigFromJson(*cfg, path + ".config", parsed, error))
            return false;
        spec.arch.config = parsed;
    }
    return r.finish();
}

bool
readAxes(const Value &v, const std::string &path, dse::DseAxes &axes,
         std::string *error)
{
    ObjectReader r(v, path, error);
    r.getDouble("tops_target", axes.topsTarget);
    r.getIntList("x_cuts", axes.xCuts);
    r.getIntList("y_cuts", axes.yCuts);
    r.getDoubleList("dram_gbps_per_tops", axes.dramGBpsPerTops);
    r.getDoubleList("noc_gbps", axes.nocGBps);
    r.getDoubleList("d2d_ratio", axes.d2dRatio);
    r.getIntList("glb_kib", axes.glbKiB);
    r.getIntList("macs_per_core", axes.macsPerCore);
    if (const Value *topos = r.child("topologies")) {
        if (!topos->isArray()) {
            if (error && error->empty())
                *error = path + ".topologies: expected an array of "
                                "topology names";
            return false;
        }
        std::vector<arch::Topology> parsed;
        for (const Value &e : topos->asArray()) {
            arch::Topology t;
            if (!e.isString() || !arch::topologyFromName(e.asString(), t)) {
                if (error && error->empty()) {
                    std::string valid;
                    for (const arch::Topology known : arch::kAllTopologies) {
                        if (!valid.empty())
                            valid += ", ";
                        valid += arch::topologyName(known);
                    }
                    *error = path + ".topologies: unknown topology (valid: " +
                             valid + ")";
                }
                return false;
            }
            parsed.push_back(t);
        }
        axes.topologies = std::move(parsed);
    }
    return r.finish();
}

bool
readSchedule(const Value &v, const std::string &path, dse::DseSchedule &s,
             std::string *error)
{
    ObjectReader r(v, path, error);
    r.getBool("enabled", s.enabled);
    r.getInt("rungs", s.rungs);
    r.getDouble("keep_fraction", s.keepFraction);
    r.getInt("base_iters", s.baseIters);
    r.getBool("lower_bound_prune", s.lowerBoundPrune);
    r.getBool("analytic_bound", s.analyticBound);
    r.getInt("min_keep", s.minKeep);
    r.getInt("polish_chains", s.polishChains);
    return r.finish();
}

bool
readSa(const Value &v, const std::string &path, mapping::SaOptions &sa,
       std::string *error)
{
    ObjectReader r(v, path, error);
    r.getInt("iterations", sa.iterations);
    r.getDouble("t_start", sa.tStart);
    r.getDouble("t_end", sa.tEnd);
    r.getInt("seed", sa.seed);
    r.getInt("chains", sa.chains);
    r.getBool("incremental_cost", sa.incrementalCost);
    r.getInt("reheat_interval", sa.reheatInterval);
    r.getInt("operator_mask", sa.operatorMask);
    r.getInt("plateau_window", sa.plateauWindow);
    return r.finish();
}

bool
readMapping(const Value &v, const std::string &path,
            mapping::MappingOptions &m, std::string *error)
{
    ObjectReader r(v, path, error);
    r.getInt("batch", m.batch);
    r.getBool("run_sa", m.runSa);
    r.getInt("sa_threads", m.saThreads);
    r.getInt("analyzer_cache_entries", m.analyzerCacheEntries);
    r.getBool("delta_eval", m.deltaEval);
    r.getInt("max_group_layers", m.maxGroupLayers);
    r.getBool("analytic_seed", m.analyticSeed);
    r.getIntList("batch_units", m.batchUnits);
    if (const Value *sa = r.child("sa")) {
        if (!readSa(*sa, path + ".sa", m.sa, error))
            return false;
    }
    return r.finish();
}

bool
readTech(const Value &v, const std::string &path, arch::TechParams &t,
         std::string *error)
{
    ObjectReader r(v, path, error);
    r.getDouble("mac_j", t.macJ);
    r.getDouble("vec_op_j", t.vecOpJ);
    r.getDouble("glb_j_per_byte", t.glbJPerByte);
    r.getDouble("buf_j_per_byte", t.bufJPerByte);
    r.getDouble("noc_hop_j_per_byte", t.nocHopJPerByte);
    r.getDouble("d2d_j_per_byte", t.d2dJPerByte);
    r.getDouble("dram_j_per_byte", t.dramJPerByte);
    r.getDouble("nop_serialization_j_per_byte", t.nopSerializationJPerByte);
    r.getInt("lanes_c", t.lanesC);
    r.getInt("vec_lane_divisor", t.vecLaneDivisor);
    r.getDouble("glb_bytes_per_cycle_per_mac", t.glbBytesPerCyclePerMac);
    r.getDouble("wbuf_bytes_per_mac", t.wbufBytesPerMac);
    r.getDouble("ibuf_bytes_per_mac", t.ibufBytesPerMac);
    r.getDouble("abuf_bytes_per_mac", t.abufBytesPerMac);
    return r.finish();
}

bool
readCost(const Value &v, const std::string &path, cost::CostParams &c,
         std::string *error)
{
    ObjectReader r(v, path, error);
    r.getDouble("silicon_dollar_per_mm2", c.siliconDollarPerMm2);
    r.getDouble("yield_unit", c.yieldUnit);
    r.getDouble("unit_area_mm2", c.unitAreaMm2);
    r.getDouble("mac_area_mm2", c.macAreaMm2);
    r.getDouble("glb_area_mm2_per_mib", c.glbAreaMm2PerMiB);
    r.getDouble("core_fixed_area_mm2", c.coreFixedAreaMm2);
    r.getDouble("d2d_area_base_mm2", c.d2dAreaBaseMm2);
    r.getDouble("d2d_area_per_gbps", c.d2dAreaPerGBps);
    r.getDouble("io_chiplet_fixed_mm2", c.ioChipletFixedMm2);
    r.getDouble("io_phy_area_per_gbps", c.ioPhyAreaPerGBps);
    r.getDouble("dram_unit_bw_gbps", c.dramUnitBwGBps);
    r.getDouble("dram_die_price", c.dramDiePrice);
    r.getDouble("substrate_scale", c.substrateScale);
    r.getDouble("package_yield_per_die", c.packageYieldPerDie);
    r.getDouble("monolithic_substrate_dollar_per_mm2",
                c.monolithicSubstrateDollarPerMm2);
    if (const Value *tiers = r.child("chiplet_substrate_tiers")) {
        if (!tiers->isArray()) {
            if (error && error->empty())
                *error = path + ".chiplet_substrate_tiers: expected an "
                                "array of tier objects";
            return false;
        }
        std::vector<cost::SubstrateTier> parsed;
        std::size_t i = 0;
        for (const Value &e : tiers->asArray()) {
            ObjectReader tr(e, path + ".chiplet_substrate_tiers[" +
                                   std::to_string(i) + "]",
                            error);
            cost::SubstrateTier tier{0.0, 0.0};
            tr.getDouble("max_area_mm2", tier.maxAreaMm2);
            tr.getDouble("dollar_per_mm2", tier.dollarPerMm2);
            if (!tr.finish())
                return false;
            parsed.push_back(tier);
            ++i;
        }
        c.chipletSubstrateTiers = std::move(parsed);
    }
    return r.finish();
}

bool
readExecution(const Value &v, const std::string &path, ExecutionSpec &e,
              std::string *error)
{
    ObjectReader r(v, path, error);
    std::string mode = e.mode == ExecutionSpec::Mode::Workers ? "workers"
                                                              : "in_process";
    r.getString("mode", mode);
    if (!r.ok())
        return false;
    if (mode == "in_process") {
        e.mode = ExecutionSpec::Mode::InProcess;
    } else if (mode == "workers") {
        e.mode = ExecutionSpec::Mode::Workers;
    } else {
        if (error && error->empty())
            *error = path + ".mode: unknown mode \"" + mode +
                     "\" (valid: in_process, workers)";
        return false;
    }
    r.getInt("workers", e.workers);
    r.getInt("max_retries", e.maxRetries);
    r.getDouble("candidate_deadline_seconds", e.candidateDeadlineSeconds);
    r.getInt("candidate_rss_mib", e.candidateRssMiB);
    return r.finish();
}

Value
executionToJson(const ExecutionSpec &e)
{
    Value v = Value::object();
    v.set("mode", e.mode == ExecutionSpec::Mode::Workers ? "workers"
                                                         : "in_process");
    v.set("workers", e.workers);
    v.set("max_retries", e.maxRetries);
    v.set("candidate_deadline_seconds", e.candidateDeadlineSeconds);
    v.set("candidate_rss_mib", e.candidateRssMiB);
    return v;
}

Value
objectiveToJson(const ExperimentSpec &spec)
{
    Value v = Value::object();
    v.set("alpha", spec.alpha);
    v.set("beta", spec.beta);
    v.set("gamma", spec.gamma);
    return v;
}

Value
modelsToJson(const ExperimentSpec &spec)
{
    Value arr = Value::array();
    for (const ModelSpec &m : spec.models) {
        Value v = Value::object();
        if (!m.zoo.empty())
            v.set("zoo", m.zoo);
        if (!m.file.empty())
            v.set("file", m.file);
        arr.push(std::move(v));
    }
    return arr;
}

Value
archToJson(const ArchSpec &a)
{
    Value v = Value::object();
    if (!a.preset.empty())
        v.set("preset", a.preset);
    if (a.config)
        v.set("config", archConfigToJson(*a.config));
    return v;
}

Value
axesToJson(const dse::DseAxes &axes)
{
    const auto numbers = [](const auto &list) {
        Value arr = Value::array();
        for (const auto e : list)
            arr.push(e);
        return arr;
    };
    Value v = Value::object();
    v.set("tops_target", axes.topsTarget);
    v.set("x_cuts", numbers(axes.xCuts));
    v.set("y_cuts", numbers(axes.yCuts));
    v.set("dram_gbps_per_tops", numbers(axes.dramGBpsPerTops));
    v.set("noc_gbps", numbers(axes.nocGBps));
    v.set("d2d_ratio", numbers(axes.d2dRatio));
    v.set("glb_kib", numbers(axes.glbKiB));
    v.set("macs_per_core", numbers(axes.macsPerCore));
    Value topos = Value::array();
    for (const arch::Topology t : axes.topologies)
        topos.push(arch::topologyName(t));
    v.set("topologies", std::move(topos));
    return v;
}

Value
scheduleToJson(const dse::DseSchedule &s)
{
    Value v = Value::object();
    v.set("enabled", s.enabled);
    v.set("rungs", s.rungs);
    v.set("keep_fraction", s.keepFraction);
    v.set("base_iters", s.baseIters);
    v.set("lower_bound_prune", s.lowerBoundPrune);
    v.set("analytic_bound", s.analyticBound);
    v.set("min_keep", static_cast<std::uint64_t>(s.minKeep));
    v.set("polish_chains", s.polishChains);
    return v;
}

Value
mappingToJson(const mapping::MappingOptions &m)
{
    Value sa = Value::object();
    sa.set("iterations", m.sa.iterations);
    sa.set("t_start", m.sa.tStart);
    sa.set("t_end", m.sa.tEnd);
    sa.set("seed", static_cast<std::uint64_t>(m.sa.seed));
    sa.set("chains", m.sa.chains);
    sa.set("incremental_cost", m.sa.incrementalCost);
    sa.set("reheat_interval", m.sa.reheatInterval);
    sa.set("operator_mask", m.sa.operatorMask);
    sa.set("plateau_window", m.sa.plateauWindow);

    Value v = Value::object();
    v.set("batch", m.batch);
    v.set("run_sa", m.runSa);
    v.set("sa", std::move(sa));
    v.set("sa_threads", m.saThreads);
    v.set("analyzer_cache_entries",
          static_cast<std::uint64_t>(m.analyzerCacheEntries));
    v.set("delta_eval", m.deltaEval);
    v.set("max_group_layers", m.maxGroupLayers);
    v.set("analytic_seed", m.analyticSeed);
    Value units = Value::array();
    for (const std::int64_t u : m.batchUnits)
        units.push(u);
    v.set("batch_units", std::move(units));
    return v;
}

Value
techToJson(const arch::TechParams &t)
{
    Value v = Value::object();
    v.set("mac_j", t.macJ);
    v.set("vec_op_j", t.vecOpJ);
    v.set("glb_j_per_byte", t.glbJPerByte);
    v.set("buf_j_per_byte", t.bufJPerByte);
    v.set("noc_hop_j_per_byte", t.nocHopJPerByte);
    v.set("d2d_j_per_byte", t.d2dJPerByte);
    v.set("dram_j_per_byte", t.dramJPerByte);
    v.set("nop_serialization_j_per_byte", t.nopSerializationJPerByte);
    v.set("lanes_c", t.lanesC);
    v.set("vec_lane_divisor", t.vecLaneDivisor);
    v.set("glb_bytes_per_cycle_per_mac", t.glbBytesPerCyclePerMac);
    v.set("wbuf_bytes_per_mac", t.wbufBytesPerMac);
    v.set("ibuf_bytes_per_mac", t.ibufBytesPerMac);
    v.set("abuf_bytes_per_mac", t.abufBytesPerMac);
    return v;
}

Value
costToJson(const cost::CostParams &c)
{
    Value v = Value::object();
    v.set("silicon_dollar_per_mm2", c.siliconDollarPerMm2);
    v.set("yield_unit", c.yieldUnit);
    v.set("unit_area_mm2", c.unitAreaMm2);
    v.set("mac_area_mm2", c.macAreaMm2);
    v.set("glb_area_mm2_per_mib", c.glbAreaMm2PerMiB);
    v.set("core_fixed_area_mm2", c.coreFixedAreaMm2);
    v.set("d2d_area_base_mm2", c.d2dAreaBaseMm2);
    v.set("d2d_area_per_gbps", c.d2dAreaPerGBps);
    v.set("io_chiplet_fixed_mm2", c.ioChipletFixedMm2);
    v.set("io_phy_area_per_gbps", c.ioPhyAreaPerGBps);
    v.set("dram_unit_bw_gbps", c.dramUnitBwGBps);
    v.set("dram_die_price", c.dramDiePrice);
    v.set("substrate_scale", c.substrateScale);
    v.set("package_yield_per_die", c.packageYieldPerDie);
    v.set("monolithic_substrate_dollar_per_mm2",
          c.monolithicSubstrateDollarPerMm2);
    Value tiers = Value::array();
    for (const cost::SubstrateTier &tier : c.chipletSubstrateTiers) {
        Value tv = Value::object();
        tv.set("max_area_mm2", tier.maxAreaMm2);
        tv.set("dollar_per_mm2", tier.dollarPerMm2);
        tiers.push(std::move(tv));
    }
    v.set("chiplet_substrate_tiers", std::move(tiers));
    return v;
}

} // namespace

std::optional<ExperimentSpec>
ExperimentSpec::fromJson(const Value &v, std::string *error)
{
    if (error)
        error->clear();
    ExperimentSpec spec;
    ObjectReader r(v, "spec", error);
    if (!r.ok())
        return std::nullopt;

    // The version gate comes first: a newer schema must be rejected with
    // a clear message, not misread through this build's key set.
    r.getInt("schema_version", spec.schemaVersion);
    if (!r.ok())
        return std::nullopt;
    if (spec.schemaVersion != kSchemaVersion) {
        if (error && error->empty())
            *error = "spec.schema_version: version " +
                     std::to_string(spec.schemaVersion) +
                     " is not supported (this build speaks version " +
                     std::to_string(kSchemaVersion) + ")";
        return std::nullopt;
    }

    r.getString("name", spec.name);
    std::string mode = "dse";
    r.getString("mode", mode);
    if (!r.ok())
        return std::nullopt;
    if (mode == "map") {
        spec.mode = Mode::Map;
    } else if (mode == "dse") {
        spec.mode = Mode::Dse;
    } else {
        if (error && error->empty())
            *error = "spec.mode: unknown mode \"" + mode +
                     "\" (valid: map, dse)";
        return std::nullopt;
    }

    if (const Value *models = r.child("models")) {
        if (!readModels(*models, "spec.models", spec, error))
            return std::nullopt;
    }
    if (const Value *archv = r.child("arch")) {
        if (!readArch(*archv, "spec.arch", spec, error))
            return std::nullopt;
    }
    if (const Value *axes = r.child("axes")) {
        if (!readAxes(*axes, "spec.axes", spec.axes, error))
            return std::nullopt;
    }
    if (const Value *schedule = r.child("schedule")) {
        if (!readSchedule(*schedule, "spec.schedule", spec.schedule, error))
            return std::nullopt;
    }
    if (const Value *objective = r.child("objective")) {
        if (!readObjective(*objective, "spec.objective", spec, error))
            return std::nullopt;
    }
    if (const Value *mapping = r.child("mapping")) {
        if (!readMapping(*mapping, "spec.mapping", spec.mapping, error))
            return std::nullopt;
    }
    if (const Value *tech = r.child("tech")) {
        if (!readTech(*tech, "spec.tech", spec.mapping.tech, error))
            return std::nullopt;
    }
    if (const Value *costv = r.child("cost")) {
        if (!readCost(*costv, "spec.cost", spec.costParams, error))
            return std::nullopt;
    }
    if (const Value *execution = r.child("execution")) {
        if (!readExecution(*execution, "spec.execution", spec.execution,
                           error))
            return std::nullopt;
    }
    r.getInt("max_candidates", spec.maxCandidates);
    r.getInt("threads", spec.threads);
    r.getDouble("deadline_seconds", spec.deadlineSeconds);
    if (!r.finish())
        return std::nullopt;

    // The engine-level exponents mirror the spec objective.
    spec.mapping.beta = spec.beta;
    spec.mapping.gamma = spec.gamma;
    spec.mapping.sa.beta = spec.beta;
    spec.mapping.sa.gamma = spec.gamma;
    return spec;
}

std::optional<ExperimentSpec>
ExperimentSpec::fromJsonText(const std::string &text, std::string *error)
{
    std::string parse_error;
    const std::optional<Value> v = common::json::parse(text, &parse_error);
    if (!v) {
        if (error)
            *error = "JSON syntax error at " + parse_error;
        return std::nullopt;
    }
    return fromJson(*v, error);
}

std::optional<ExperimentSpec>
ExperimentSpec::fromFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open spec file: " + path;
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return fromJsonText(text.str(), error);
}

Value
ExperimentSpec::toJson() const
{
    Value v = Value::object();
    v.set("schema_version", schemaVersion);
    v.set("name", name);
    v.set("mode", mode == Mode::Map ? "map" : "dse");
    v.set("models", modelsToJson(*this));
    if (mode == Mode::Map) {
        v.set("arch", archToJson(arch));
    } else {
        v.set("axes", axesToJson(axes));
        v.set("schedule", scheduleToJson(schedule));
        v.set("max_candidates", static_cast<std::uint64_t>(maxCandidates));
    }
    v.set("objective", objectiveToJson(*this));
    v.set("mapping", mappingToJson(mapping));
    v.set("tech", techToJson(mapping.tech));
    v.set("cost", costToJson(costParams));
    v.set("threads", threads);
    v.set("deadline_seconds", deadlineSeconds);
    v.set("execution", executionToJson(execution));
    return v;
}

std::string
ExperimentSpec::validate() const
{
    std::vector<std::string> problems;
    const auto complain = [&](const std::string &p) {
        problems.push_back(p);
    };

    if (models.empty())
        complain("models: at least one model is required");
    for (std::size_t i = 0; i < models.size(); ++i) {
        const ModelSpec &m = models[i];
        const std::string where = "models[" + std::to_string(i) + "]";
        if (m.zoo.empty() == m.file.empty()) {
            complain(where + ": exactly one of \"zoo\" or \"file\" must "
                             "be set");
            continue;
        }
        if (!m.zoo.empty()) {
            const std::vector<std::string> known = dnn::zoo::available();
            if (std::find(known.begin(), known.end(), m.zoo) ==
                known.end()) {
                std::string valid;
                for (const std::string &n : known)
                    valid += (valid.empty() ? "" : ", ") + n;
                complain(where + ".zoo: unknown model \"" + m.zoo +
                         "\" (valid: " + valid + ")");
            }
        }
    }

    if (mode == Mode::Map) {
        if (arch.empty()) {
            complain("arch: map mode needs a \"preset\" name or an inline "
                     "\"config\"");
        } else if (!arch.preset.empty() && arch.config.has_value()) {
            complain("arch: set either \"preset\" or \"config\", not both");
        } else if (!arch.preset.empty()) {
            if (!arch::presets::byName(arch.preset)) {
                std::string valid;
                for (const std::string &n : arch::presets::names())
                    valid += (valid.empty() ? "" : ", ") + n;
                complain("arch.preset: unknown preset \"" + arch.preset +
                         "\" (valid: " + valid + ")");
            }
        } else {
            const std::string err = arch.config->validate();
            if (!err.empty())
                complain("arch.config: " + err);
        }
    } else {
        if (axes.topsTarget <= 0)
            complain("axes.tops_target: must be positive");
        const auto nonEmpty = [&](const auto &list, const char *key) {
            if (list.empty())
                complain(std::string("axes.") + key +
                         ": at least one value is required");
        };
        nonEmpty(axes.xCuts, "x_cuts");
        nonEmpty(axes.yCuts, "y_cuts");
        nonEmpty(axes.dramGBpsPerTops, "dram_gbps_per_tops");
        nonEmpty(axes.nocGBps, "noc_gbps");
        nonEmpty(axes.d2dRatio, "d2d_ratio");
        nonEmpty(axes.glbKiB, "glb_kib");
        nonEmpty(axes.macsPerCore, "macs_per_core");
        nonEmpty(axes.topologies, "topologies");
        if (schedule.rungs < 0)
            complain("schedule.rungs: must be >= 0");
        if (schedule.keepFraction < 0.0 || schedule.keepFraction > 1.0)
            complain("schedule.keep_fraction: must be within [0, 1]");
        if (schedule.baseIters < 1)
            complain("schedule.base_iters: must be >= 1");
        if (schedule.polishChains < 1)
            complain("schedule.polish_chains: must be >= 1");
    }

    if (!(std::isfinite(alpha) && std::isfinite(beta) &&
          std::isfinite(gamma)))
        complain("objective: exponents must be finite numbers");
    if (mapping.batch < 1)
        complain("mapping.batch: must be >= 1");
    if (mapping.sa.iterations < 0)
        complain("mapping.sa.iterations: must be >= 0");
    if (mapping.sa.chains < 1)
        complain("mapping.sa.chains: must be >= 1");
    if (!(mapping.sa.tStart > 0.0) || !(mapping.sa.tEnd > 0.0) ||
        mapping.sa.tEnd > mapping.sa.tStart)
        complain("mapping.sa: temperatures need t_start >= t_end > 0");
    if ((mapping.sa.operatorMask & 0x1Fu) == 0)
        complain("mapping.sa.operator_mask: at least one of the five "
                 "operator bits must be set");
    if (mapping.sa.plateauWindow < 0)
        complain("mapping.sa.plateau_window: must be >= 0 (0 = off)");
    if (mapping.maxGroupLayers < 1)
        complain("mapping.max_group_layers: must be >= 1");
    if (mapping.saThreads < 0)
        complain("mapping.sa_threads: must be >= 0");
    if (threads < 0)
        complain("threads: must be >= 0 (0 = hardware concurrency)");
    if (!(deadlineSeconds >= 0.0) || !std::isfinite(deadlineSeconds))
        complain("deadline_seconds: must be a finite number >= 0 "
                 "(0 = no deadline)");
    if (execution.workers < 0)
        complain("execution.workers: must be >= 0 (0 = thread count)");
    if (execution.maxRetries < 0)
        complain("execution.max_retries: must be >= 0");
    if (!(execution.candidateDeadlineSeconds >= 0.0) ||
        !std::isfinite(execution.candidateDeadlineSeconds))
        complain("execution.candidate_deadline_seconds: must be a finite "
                 "number >= 0 (0 = no per-candidate deadline)");
    if (execution.candidateRssMiB < 0)
        complain("execution.candidate_rss_mib: must be >= 0 "
                 "(0 = unlimited)");

    std::string joined;
    for (const std::string &p : problems)
        joined += (joined.empty() ? "" : "\n") + p;
    return joined;
}

std::string
ExperimentSpec::canonicalText() const
{
    // The deadline changes how long a run may take, not what it
    // computes: a complete result is bit-identical under any budget. It
    // is therefore excluded from the identity so reruns with a different
    // time budget hit the same cache/store entry. Truncated results are
    // never cached or stored, which keeps this sound.
    ExperimentSpec identity = *this;
    identity.deadlineSeconds = 0.0;
    // Execution controls (worker pool, retry/quarantine budgets) decide
    // *where* candidates evaluate, not what they compute — worker and
    // in-process runs produce bit-identical winners — so they share the
    // deadline's exclusion.
    identity.execution = ExecutionSpec{};
    return identity.toJson().canonical();
}

std::uint64_t
ExperimentSpec::canonicalHash() const
{
    return common::json::fnv1a64(canonicalText());
}

std::optional<ResolvedExperiment>
resolveExperiment(const ExperimentSpec &spec, std::string *error)
{
    const std::string problems = spec.validate();
    if (!problems.empty()) {
        if (error)
            *error = problems;
        return std::nullopt;
    }

    ResolvedExperiment resolved;
    for (const ModelSpec &m : spec.models) {
        if (!m.zoo.empty()) {
            resolved.models.push_back(dnn::zoo::byName(m.zoo));
            continue;
        }
        std::string parse_error;
        std::optional<dnn::Graph> g =
            dnn::parseModelFile(m.file, &parse_error);
        if (!g) {
            if (error)
                *error = "models.file \"" + m.file + "\": " + parse_error;
            return std::nullopt;
        }
        resolved.models.push_back(std::move(*g));
    }

    if (spec.mode == ExperimentSpec::Mode::Map) {
        resolved.archConfig = spec.arch.config
                                  ? *spec.arch.config
                                  : *arch::presets::byName(spec.arch.preset);
    }
    return resolved;
}

} // namespace gemini::api
