#include "src/api/supervisor.hh"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/api/worker.hh"
#include "src/common/fault_injection.hh"
#include "src/common/logging.hh"

namespace gemini::api {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Exponential backoff before the Nth consecutive respawn: 25ms << N. */
void
backoffSleep(int consecutive_failures)
{
    if (consecutive_failures <= 0)
        return;
    const int shift = std::min(consecutive_failures - 1, 6);
    std::this_thread::sleep_for(std::chrono::milliseconds(25 << shift));
}

} // namespace

WorkerSupervisor::WorkerSupervisor(SupervisorOptions options)
    : opts_(std::move(options))
{
    opts_.workers = std::max(1, opts_.workers);
    opts_.maxRetries = std::max(0, opts_.maxRetries);
    slots_.resize(static_cast<std::size_t>(opts_.workers));
}

WorkerSupervisor::~WorkerSupervisor()
{
    // Polite first: EOF on stdin asks each worker to exit cleanly...
    for (Slot &slot : slots_)
        if (slot.proc)
            slot.proc->closeStdin();
    const Clock::time_point t0 = Clock::now();
    for (Slot &slot : slots_) {
        if (!slot.proc)
            continue;
        while (slot.proc->running() && secondsSince(t0) < 0.5)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        // ...then SIGKILL whatever is still around (wedged workers).
        slot.proc->kill();
        slot.proc->wait();
    }
}

bool
WorkerSupervisor::start(std::string *error)
{
    // Called before any evaluate(); slot 0 is not contended yet.
    return spawnWorker(slots_[0], error);
}

SupervisorStats
WorkerSupervisor::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

int
WorkerSupervisor::acquireSlot()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].busy) {
                slots_[i].busy = true;
                return static_cast<int>(i);
            }
        }
        slotFree_.wait(lock);
    }
}

void
WorkerSupervisor::releaseSlot(int index)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        slots_[static_cast<std::size_t>(index)].busy = false;
    }
    slotFree_.notify_one();
}

bool
WorkerSupervisor::spawnWorker(Slot &slot, std::string *error)
{
    backoffSleep(slot.consecutiveSpawnFailures);
    auto fail = [&](const std::string &why) {
        ++slot.consecutiveSpawnFailures;
        if (error)
            *error = why;
        return false;
    };

    if (common::fault::shouldFail("worker.spawn"))
        return fail("injected fault at worker.spawn");

    auto proc = std::make_unique<common::Subprocess>();
    std::string err;
    if (!proc->spawn(opts_.workerArgv, &err))
        return fail("spawn: " + err);

    WorkerRequest init;
    init.kind = WorkerRequest::Kind::Init;
    init.seq = 0;
    init.specText = opts_.specText;
    if (!common::writeFrame(proc->stdinFd(), init.toText(), &err)) {
        proc->kill();
        proc->wait();
        return fail("init write: " + err);
    }

    const Clock::time_point t0 = Clock::now();
    std::string payload;
    for (;;) {
        const double remaining =
            opts_.handshakeTimeoutSeconds - secondsSince(t0);
        if (remaining <= 0.0) {
            proc->kill();
            proc->wait();
            return fail("init handshake timed out");
        }
        const common::FrameStatus st =
            common::readFrame(proc->stdoutFd(), payload, remaining);
        if (st != common::FrameStatus::Ok) {
            proc->kill();
            proc->wait();
            return fail(std::string("init read: ") +
                        common::frameStatusName(st));
        }
        WorkerResponse resp;
        if (!WorkerResponse::fromText(payload, resp, &err)) {
            proc->kill();
            proc->wait();
            return fail("init response: " + err);
        }
        if (resp.kind == WorkerResponse::Kind::Heartbeat)
            continue;
        if (resp.kind == WorkerResponse::Kind::Ready)
            break;
        proc->kill();
        proc->wait();
        return fail("worker rejected spec: " + resp.message);
    }

    slot.proc = std::move(proc);
    slot.nextSeq = 1;
    slot.consecutiveSpawnFailures = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.spawns;
    }
    return true;
}

void
WorkerSupervisor::killWorker(Slot &slot, const std::string &why)
{
    if (!slot.proc)
        return;
    GEMINI_WARN("supervisor: killing worker pid ",
                static_cast<long>(slot.proc->pid()), " (", why, ")");
    slot.proc->kill();
    slot.proc->wait();
    slot.proc.reset();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.kills;
}

bool
WorkerSupervisor::attemptOnWorker(Slot &slot,
                                  const dse::RemoteEvalRequest &request,
                                  dse::RemoteEvalOutcome &outcome,
                                  std::string &why)
{
    WorkerRequest rq;
    rq.kind = WorkerRequest::Kind::Eval;
    rq.seq = slot.nextSeq++;
    rq.index = request.index;
    rq.rung = request.rung;
    rq.iters = request.iters;
    rq.chains = request.chains;
    rq.seed = request.seed;
    rq.arch = *request.arch;
    if (request.warmStarts)
        rq.warmStarts = *request.warmStarts;

    std::string err;
    if (common::fault::shouldFail("worker.write")) {
        killWorker(slot, "injected fault at worker.write");
        why = "injected fault at worker.write";
        return false;
    }
    if (!common::writeFrame(slot.proc->stdinFd(), rq.toText(), &err)) {
        killWorker(slot, "eval write failed: " + err);
        why = "eval write: " + err;
        return false;
    }

    const Clock::time_point t0 = Clock::now();
    Clock::time_point last_frame = t0;
    std::string payload;
    for (;;) {
        const double waited = secondsSince(t0);
        if (opts_.candidateDeadlineSeconds > 0.0 &&
            waited > opts_.candidateDeadlineSeconds) {
            why = "candidate deadline exceeded";
            killWorker(slot, why);
            return false;
        }
        if (secondsSince(last_frame) > opts_.heartbeatTimeoutSeconds) {
            why = "heartbeat timeout";
            killWorker(slot, why);
            return false;
        }
        if (opts_.candidateRssMiB > 0) {
            const long rss = common::processRssMiB(slot.proc->pid());
            if (rss > opts_.candidateRssMiB) {
                why = "rss budget exceeded (" + std::to_string(rss) +
                      " MiB)";
                killWorker(slot, why);
                return false;
            }
        }

        // poll() first so a quiet pipe doesn't enter readFrame (whose
        // timeout discards partial bytes — only safe when we kill).
        struct pollfd pfd;
        pfd.fd = slot.proc->stdoutFd();
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int pr = ::poll(&pfd, 1, /*ms=*/100);
        if (pr == 0)
            continue;
        if (pr < 0 || !(pfd.revents & (POLLIN | POLLHUP))) {
            why = "poll on worker pipe failed";
            killWorker(slot, why);
            return false;
        }

        const common::FrameStatus st = common::readFrame(
            slot.proc->stdoutFd(), payload, opts_.heartbeatTimeoutSeconds);
        if (st != common::FrameStatus::Ok) {
            why = std::string("response frame ") +
                  common::frameStatusName(st);
            killWorker(slot, why);
            return false;
        }
        last_frame = Clock::now();

        WorkerResponse resp;
        if (!WorkerResponse::fromText(payload, resp, &err)) {
            why = "garbage response: " + err;
            killWorker(slot, why);
            return false;
        }
        if (resp.seq != rq.seq) {
            why = "out-of-sequence response";
            killWorker(slot, why);
            return false;
        }
        if (resp.kind == WorkerResponse::Kind::Heartbeat)
            continue;
        if (resp.kind == WorkerResponse::Kind::Error) {
            // Structured failure: the worker is healthy, the candidate
            // (or request) is not. Counts as a failed attempt.
            why = resp.message;
            return false;
        }
        if (resp.kind != WorkerResponse::Kind::Result ||
            resp.perModel.empty() ||
            resp.perModel.size() != resp.mappings.size()) {
            why = "malformed result frame";
            killWorker(slot, why);
            return false;
        }
        outcome.poisoned = false;
        outcome.poisonReason.clear();
        outcome.perModel = std::move(resp.perModel);
        outcome.mappings = std::move(resp.mappings);
        return true;
    }
}

dse::RemoteEvalOutcome
WorkerSupervisor::evaluate(const dse::RemoteEvalRequest &request)
{
    const int index = acquireSlot();
    Slot &slot = slots_[static_cast<std::size_t>(index)];

    dse::RemoteEvalOutcome outcome;
    std::string last_why = "never attempted";
    const int attempts = 1 + opts_.maxRetries;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.retries;
        }
        if (!slot.proc) {
            std::string err;
            if (!spawnWorker(slot, &err)) {
                last_why = err;
                continue;
            }
        }
        if (attemptOnWorker(slot, request, outcome, last_why)) {
            releaseSlot(index);
            return outcome;
        }
        GEMINI_WARN("supervisor: candidate ", request.index, " attempt ",
                    attempt + 1, "/", attempts, " failed: ", last_why);
    }

    outcome.poisoned = true;
    outcome.poisonReason = last_why;
    outcome.perModel.clear();
    outcome.mappings.clear();
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.poisoned;
    }
    releaseSlot(index);
    return outcome;
}

} // namespace gemini::api
