/**
 * @file
 * The versioned, declarative front door of the co-exploration loop: an
 * ExperimentSpec describes one experiment — which models, which
 * architecture (or which architecture *space*), which budgets and which
 * objective — as plain data with a JSON wire form. Everything the example
 * binaries used to hand-assemble from internal headers is expressible
 * here, so experiments can come from files, job queues, or remote users.
 *
 * Stability contract:
 *  - `schema_version` names the wire schema; parsers reject newer
 *    versions with an explicit message instead of misreading them.
 *  - Every knob is optional in the wire form and defaults exactly like
 *    the C++ option structs, so specs stay terse and old files keep
 *    working when new knobs are added (additions default, never reword).
 *  - Unknown keys are *errors*, not ignored — a typo'd knob must not
 *    silently run the default experiment.
 *  - canonicalHash() fingerprints the fully-defaulted spec content
 *    (sorted keys, canonical number formatting), so two files describing
 *    the same experiment hash identically regardless of formatting, key
 *    order, or which defaults they spell out. The ExplorationService keys
 *    its result cache on this hash.
 */

#ifndef GEMINI_API_SPEC_HH
#define GEMINI_API_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/arch/arch_config.hh"
#include "src/common/json.hh"
#include "src/cost/cost_params.hh"
#include "src/dnn/graph.hh"
#include "src/dse/dse.hh"
#include "src/mapping/engine.hh"

namespace gemini::api {

/** Wire-schema version written and accepted by this build. */
inline constexpr int kSchemaVersion = 1;

/**
 * One workload: exactly one of `zoo` (a dnn::zoo registry name) or
 * `file` (a path to a model description in the dnn::parser format).
 */
struct ModelSpec
{
    std::string zoo;
    std::string file;
};

/**
 * Architecture reference for map-mode experiments: exactly one of
 * `preset` (an arch::presets registry name) or `config` (an inline
 * ArchConfig).
 */
struct ArchSpec
{
    std::string preset;
    std::optional<arch::ArchConfig> config;

    bool empty() const { return preset.empty() && !config.has_value(); }
};

/**
 * How (not what) a DSE experiment evaluates its candidates: in the
 * service process, or sharded over supervised `gemini worker`
 * subprocesses with crash isolation, a heartbeat watchdog, per-candidate
 * budgets, and poison quarantine (see api::WorkerSupervisor). Execution
 * controls never affect the result when nothing is poisoned — worker
 * and in-process runs produce bit-identical winners — so this whole
 * section is excluded from canonicalHash(), like the deadline.
 */
struct ExecutionSpec
{
    enum class Mode
    {
        InProcess,
        Workers
    };

    Mode mode = Mode::InProcess;

    /** Worker subprocesses (0 = the run's thread count). */
    int workers = 0;

    /** Fresh-worker retries per candidate before poison quarantine. */
    int maxRetries = 2;

    /** Per-candidate wall-clock budget in seconds (0 = none). */
    double candidateDeadlineSeconds = 0.0;

    /** Per-worker resident-set budget in MiB (0 = unlimited). */
    int candidateRssMiB = 0;
};

/**
 * A complete experiment description. Defaults reproduce the C++ option
 * structs' defaults; see the file comment for the stability contract.
 */
struct ExperimentSpec
{
    enum class Mode
    {
        Map, ///< map the models onto one fixed architecture
        Dse  ///< co-explore the architecture space of `axes`
    };

    int schemaVersion = kSchemaVersion;
    std::string name = "experiment";
    Mode mode = Mode::Dse;

    std::vector<ModelSpec> models;

    /** Map mode only: the fixed architecture. */
    ArchSpec arch;

    /** DSE mode only: the candidate space and its budget schedule. */
    dse::DseAxes axes;
    dse::DseSchedule schedule;
    std::size_t maxCandidates = 0;

    /** Objective exponents MC^alpha * E^beta * D^gamma. */
    double alpha = 1.0;
    double beta = 1.0;
    double gamma = 1.0;

    /**
     * Mapping-engine knobs (batch, SA budget, partitioner, tech params).
     * The runtime-only fields (stop token, beta/gamma mirrors) are not
     * part of the wire form.
     */
    mapping::MappingOptions mapping;

    cost::CostParams costParams;

    /** Worker threads (0 = hardware concurrency). */
    int threads = 0;

    /**
     * Wall-clock budget in seconds (0 = none). A run that exceeds it
     * degrades gracefully to a valid best-so-far result flagged
     * truncated (see DseOptions::deadlineSeconds). An execution control,
     * not part of the experiment's identity: canonicalHash() ignores it,
     * so the same exploration under different time budgets shares one
     * cache/store entry (only *complete* results are ever stored).
     */
    double deadlineSeconds = 0.0;

    /**
     * Candidate execution controls (worker pool, retry and quarantine
     * budgets). Like the deadline, execution-only: excluded from
     * canonicalHash().
     */
    ExecutionSpec execution;

    // ------------------------------------------------------------------

    /**
     * Parse a spec from its JSON form. Structural problems (wrong types,
     * unknown keys, unsupported schema version) fail with a
     * "path.to.key: reason" message in `error`. Semantic validity is a
     * separate pass — call validate() on the returned spec.
     */
    static std::optional<ExperimentSpec> fromJson(const common::json::Value &v,
                                                  std::string *error);

    /** fromJson over parsed text (JSON syntax errors reported too). */
    static std::optional<ExperimentSpec>
    fromJsonText(const std::string &text, std::string *error);

    /** fromJsonText over a file's contents. */
    static std::optional<ExperimentSpec> fromFile(const std::string &path,
                                                  std::string *error);

    /**
     * The fully-defaulted wire form (every knob spelled out). Dump with
     * .dump(2) for a human-readable file.
     */
    common::json::Value toJson() const;

    /**
     * Semantic validation: registry names exist, exactly one model/arch
     * source is set, budgets and fractions are in range... Returns all
     * problems newline-joined (empty = valid). Does not touch the
     * filesystem — file-backed models are checked at resolve time.
     */
    std::string validate() const;

    /**
     * The canonical text that canonicalHash() fingerprints: the
     * fully-defaulted wire form with execution-only controls (the
     * deadline) zeroed. The result store keeps this text next to every
     * record to detect 64-bit hash collisions.
     */
    std::string canonicalText() const;

    /** Content fingerprint (see the stability contract above). */
    std::uint64_t canonicalHash() const;
};

/** A spec's models and (map mode) architecture, loaded and owned. */
struct ResolvedExperiment
{
    std::vector<dnn::Graph> models;
    std::optional<arch::ArchConfig> archConfig; ///< set in map mode
};

/**
 * Load everything a spec references: zoo models by name, file models
 * through the parser, the architecture from its preset or inline config.
 * Runs validate() first; on any failure returns nullopt with the message
 * in `error`.
 */
std::optional<ResolvedExperiment> resolveExperiment(const ExperimentSpec &spec,
                                                    std::string *error);

} // namespace gemini::api

#endif // GEMINI_API_SPEC_HH
