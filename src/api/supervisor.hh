/**
 * @file
 * The supervisor half of the supervised execution mode: a pool of
 * `gemini worker` subprocesses (see worker.hh for the frame protocol),
 * one candidate evaluation outstanding per worker, with a lifecycle
 * policy that keeps one bad candidate from taking down the run:
 *
 *   - a worker that dies, stops heartbeating, overruns the per-candidate
 *     wall-clock deadline, or exceeds the RSS budget is SIGKILLed;
 *   - the candidate is retried on a freshly spawned worker (exponential
 *     backoff on consecutive spawn failures) up to `maxRetries` times;
 *   - a candidate that still fails is quarantined as *poisoned*: the
 *     evaluation returns an infeasible outcome tagged with the reason
 *     instead of aborting the exploration.
 *
 * evaluate() is called concurrently from the DSE scheduler's pool
 * threads; each call checks out a worker slot and blocks until one is
 * free, so in-flight parallelism equals the worker count.
 */

#ifndef GEMINI_API_SUPERVISOR_HH
#define GEMINI_API_SUPERVISOR_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/subprocess.hh"
#include "src/dse/dse.hh"

namespace gemini::api {

struct SupervisorOptions
{
    /** Worker processes (= max concurrent evaluations). */
    int workers = 1;
    /** Retries on a fresh worker before a candidate is quarantined. */
    int maxRetries = 2;
    /** Per-candidate wall-clock budget in seconds; 0 = unlimited. */
    double candidateDeadlineSeconds = 0.0;
    /** Per-worker resident-set budget in MiB; 0 = unlimited. */
    int candidateRssMiB = 0;
    /** Max silence between worker frames before the watchdog kills. */
    double heartbeatTimeoutSeconds = 10.0;
    /** Budget for spawn + init handshake of one worker. */
    double handshakeTimeoutSeconds = 30.0;
    /** Full ExperimentSpec JSON text, sent to every worker at init. */
    std::string specText;
    /** Worker command line, e.g. {"/path/to/gemini", "worker"}. */
    std::vector<std::string> workerArgv;
};

/** Lifecycle counters, for logs and the stress tests. */
struct SupervisorStats
{
    int spawns = 0;   ///< successful worker spawns (incl. respawns)
    int kills = 0;    ///< workers SIGKILLed by the watchdog/budgets
    int retries = 0;  ///< candidate attempts after the first
    int poisoned = 0; ///< candidates quarantined
};

class WorkerSupervisor
{
  public:
    explicit WorkerSupervisor(SupervisorOptions options);
    ~WorkerSupervisor();

    WorkerSupervisor(const WorkerSupervisor &) = delete;
    WorkerSupervisor &operator=(const WorkerSupervisor &) = delete;

    /**
     * Spawn and handshake the first worker. Failure here means worker
     * mode is unavailable (bad binary, spec the worker rejects...) and
     * the caller should degrade to in-process execution. Remaining
     * workers are spawned lazily as evaluations demand them.
     */
    bool start(std::string *error);

    /**
     * Evaluate one candidate on a worker, applying the full lifecycle
     * policy. Never throws on worker failure: a candidate that exhausts
     * its retries comes back with `poisoned = true` and the reason.
     * Thread-safe; blocks while all workers are busy.
     */
    dse::RemoteEvalOutcome evaluate(const dse::RemoteEvalRequest &request);

    SupervisorStats stats() const;

  private:
    struct Slot
    {
        std::unique_ptr<common::Subprocess> proc; ///< null = not spawned
        std::uint64_t nextSeq = 1;
        int consecutiveSpawnFailures = 0; ///< drives the backoff
        bool busy = false;
    };

    int acquireSlot();
    void releaseSlot(int index);

    /** Spawn + init handshake; kills the worker on handshake failure. */
    bool spawnWorker(Slot &slot, std::string *error);
    /** SIGKILL + reap + drop the slot's worker. */
    void killWorker(Slot &slot, const std::string &why);
    /**
     * One attempt: send the eval frame, pump heartbeat/result frames
     * enforcing watchdog + budgets. Returns true with `outcome` filled
     * on success; false with `why` on any failure (the worker has been
     * killed unless it answered with a structured error frame).
     */
    bool attemptOnWorker(Slot &slot, const dse::RemoteEvalRequest &request,
                         dse::RemoteEvalOutcome &outcome, std::string &why);

    SupervisorOptions opts_;
    mutable std::mutex mu_;
    std::condition_variable slotFree_;
    std::vector<Slot> slots_;
    SupervisorStats stats_;
};

} // namespace gemini::api

#endif // GEMINI_API_SUPERVISOR_HH
