/**
 * @file
 * ExplorationService: the long-lived execution front door of the API
 * layer. One service owns one shared ThreadPool; submitted
 * ExperimentSpecs become asynchronous jobs whose candidate tasks
 * interleave on that pool (concurrent jobs never stack worker pools on
 * top of each other). Each job returns a future-style JobHandle with
 * streaming progress events, cooperative cancellation, and a
 * spec-hash-keyed result cache that serves identical resubmissions
 * instantly — the contract a sharding/batching layer above can build on.
 *
 * Threading model: a submit() spawns one lightweight controller thread
 * that resolves the spec and drives the run; all heavy candidate
 * evaluation happens on the shared pool via DseOptions::pool. Progress
 * callbacks fire on worker threads (see DseProgressFn's contract);
 * cancellation is checked at candidate/chain granularity only, so the SA
 * inner loop carries no hooks — cancelled jobs return a valid *partial*
 * result (see DseStats::cancelled).
 */

#ifndef GEMINI_API_SERVICE_HH
#define GEMINI_API_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/spec.hh"
#include "src/common/json.hh"
#include "src/cost/mc_evaluator.hh"
#include "src/common/stop_token.hh"
#include "src/common/thread_pool.hh"
#include "src/dse/dse.hh"
#include "src/mapping/engine.hh"

namespace gemini::api {

/** Rung-granular progress stream (re-exported from the DSE layer). */
using ProgressEvent = dse::DseProgressEvent;
using ProgressFn = dse::DseProgressFn;

enum class JobState
{
    Queued,
    Running,
    Done,      ///< completed; result valid and cached
    Cancelled, ///< stop observed; result valid but partial, not cached
    Failed     ///< spec invalid or the run threw; see result().error
};

const char *jobStateName(JobState s);

/** Outcome of one submitted experiment. */
struct ExperimentResult
{
    /** Why a Failed job failed (distinguishable through JobHandle). */
    enum class ErrorKind
    {
        None,        ///< not failed
        InvalidSpec, ///< rejected before running (validation/resolve)
        Runtime      ///< the run itself threw; rethrow() restores the
                     ///< original exception
    };

    /** The spec as executed (fully defaulted). */
    ExperimentSpec spec;
    std::uint64_t specHash = 0;

    bool fromCache = false;
    bool cancelled = false;

    /**
     * The run hit its wall-clock deadline and returned best-so-far (see
     * DseStats::truncated). Valid but incomplete: never cached or
     * stored, and its rung journal is kept so a resubmission with
     * `resume` (and more time) continues instead of restarting.
     */
    bool truncated = false;

    /** Nonempty exactly when the job failed. */
    std::string error;
    ErrorKind errorKind = ErrorKind::None;

    /** DSE-mode outcome (mode == Dse and !failed). */
    dse::DseResult dse;

    /** Map-mode outcomes, parallel to spec.models. */
    std::vector<mapping::MappingResult> mappings;

    /** Map mode: the resolved architecture and its monetary cost. */
    arch::ArchConfig mapArch;
    cost::CostBreakdown mapArchMc;

    bool failed() const { return !error.empty(); }

    /**
     * Self-contained export: spec, spec_hash (hex string), status flags
     * and the mode's result payload. The gemini CLI writes this as
     * result.json.
     */
    common::json::Value toJson() const;

    /**
     * Inverse of toJson(), used by the result store to round-trip
     * records. Strict: unknown keys, a bad spec, or a payload that does
     * not match the spec's mode all fail with a "path.key: reason"
     * message.
     */
    static std::optional<ExperimentResult>
    fromJson(const common::json::Value &v, std::string *error);
};

/**
 * Future-style handle to a submitted job. Cheap to copy; all copies
 * share the job. A default-constructed handle is invalid.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    bool valid() const { return state_ != nullptr; }

    JobState state() const;

    /** The spec's canonical content hash (the result-cache key). */
    std::uint64_t specHash() const;

    /**
     * Request cooperative cancellation. Returns immediately; the job
     * drains at the next candidate/chain boundary and wait() then
     * returns a valid partial result with state() == Cancelled. No-op on
     * finished jobs.
     */
    void cancel();

    /** Block until the job finishes; the result stays owned by the job. */
    const ExperimentResult &wait();

    /** Non-blocking: the result once finished, nullptr before. */
    std::shared_ptr<const ExperimentResult> result() const;

    /**
     * Wait, then rethrow a Failed job's original exception: the very
     * exception object the run threw (Runtime failures preserve the
     * type through std::exception_ptr), or std::invalid_argument with
     * the validation message for InvalidSpec failures. No-op when the
     * job did not fail.
     */
    void rethrow();

  private:
    friend class ExplorationService;
    struct Shared;
    explicit JobHandle(std::shared_ptr<Shared> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<Shared> state_;
};

class ResultStore;

/** Per-submission knobs beyond the spec itself. */
struct SubmitOptions
{
    ProgressFn progress;

    /**
     * Resume an interrupted run from the store's rung journal (if one
     * exists for this spec hash) instead of starting over. Requires a
     * store; determinism guarantees the same final winner either way.
     */
    bool resume = false;
};

class ExplorationService
{
  public:
    /**
     * Start the shared pool with `threads` workers (0 = hardware). With
     * a store, completed results are also published to disk, looked up
     * before running, and every scheduled DSE run keeps a write-ahead
     * rung journal there — killed jobs become resumable (see
     * SubmitOptions::resume).
     */
    explicit ExplorationService(int threads = 0,
                                std::shared_ptr<ResultStore> store = nullptr);

    /** Waits for every submitted job to finish (cancel first to hurry). */
    ~ExplorationService();

    ExplorationService(const ExplorationService &) = delete;
    ExplorationService &operator=(const ExplorationService &) = delete;

    /**
     * Submit an experiment. Invalid specs still return a handle — the
     * job fails fast and wait() reports the validation message, so queue
     * producers get uniform error handling. A cache hit returns an
     * already-finished handle (result.fromCache set) without running
     * anything.
     */
    JobHandle submit(ExperimentSpec spec, ProgressFn progress = {});

    /** submit() with per-submission options (resume, ...). */
    JobHandle submit(ExperimentSpec spec, SubmitOptions options);

    /** The persistent store, if this service was built with one. */
    const std::shared_ptr<ResultStore> &store() const { return store_; }

    /**
     * Peek the result cache (memory, then store) without running
     * anything: the scheduler's admission dedup. A store hit warms the
     * in-memory cache. The returned copy carries fromCache = true;
     * nullptr on miss.
     */
    std::shared_ptr<const ExperimentResult>
    lookupCached(const ExperimentSpec &spec);

    /** Completed results held by the spec-hash cache. */
    std::size_t cacheSize() const;

    void clearCache();

    std::size_t threadCount() const { return pool_.threadCount(); }

  private:
    /**
     * A cached result keyed by spec hash. FNV-1a is not collision-free,
     * so the canonical spec text is stored and compared on every hit —
     * a colliding spec falls through to a real run instead of silently
     * receiving another experiment's result.
     */
    struct CacheEntry
    {
        std::string canonicalSpec;
        std::shared_ptr<const ExperimentResult> result;
    };

    /** One job's controller thread plus its I-have-exited flag. */
    struct Controller
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void runJob(std::shared_ptr<JobHandle::Shared> job, ExperimentSpec spec,
                SubmitOptions options);
    void runJobBody(const std::shared_ptr<JobHandle::Shared> &job,
                    ExperimentResult &result, const SubmitOptions &options,
                    const ResolvedExperiment &resolved);

    /** Join controllers whose jobs have finished (called from submit). */
    void reapControllersLocked(std::vector<std::thread> &joinable);

    ThreadPool pool_;
    std::shared_ptr<ResultStore> store_;
    mutable std::mutex mu_;
    std::map<std::uint64_t, CacheEntry> cache_;
    std::vector<Controller> controllers_;
};

} // namespace gemini::api

#endif // GEMINI_API_SERVICE_HH
