/**
 * @file
 * Persistent disk-backed result store of the ExplorationService: the
 * in-memory spec-hash cache, made durable. One directory holds one store;
 * every completed experiment lives in its own file, keyed by the spec's
 * canonical content hash:
 *
 *   <16-hex-hash>.result.json   {"checksum":..,"payload":{
 *                                  "spec_canonical":.., "result":..}}
 *   <16-hex-hash>.spec.json     the submitted spec (enables `gemini
 *                               resume <hash>` without the original file)
 *   <16-hex-hash>.journal       write-ahead rung journal of an in-flight
 *                               or interrupted run (see dse/journal.hh)
 *
 * Integrity model: records publish atomically (temp + fsync + rename via
 * common::writeFileAtomic), carry an FNV-1a 64 checksum over the
 * canonical payload text, and store the full canonical spec so 64-bit
 * hash collisions are detected by comparison, not assumed away. A record
 * that fails its checksum or does not parse is *quarantined* (renamed
 * aside) and reported as a miss — corrupt data is recomputed, never
 * served. A colliding record (checksum fine, different spec) is left
 * intact and reported as a miss for the colliding spec.
 *
 * Concurrency: every operation takes an advisory file lock on
 * `<dir>/.lock` (plus an in-process mutex), so two services — or two
 * processes — sharing one store directory serialize their accesses
 * instead of corrupting each other's publishes. A long-lived daemon
 * additionally opens the store *exclusively* (StoreOwnership::Exclusive):
 * a pid-stamped flock on `<dir>/.owner` held for the store's lifetime,
 * so a second daemon pointed at the same directory fails fast with a
 * "locked by pid N" error instead of the two silently interleaving
 * scheduling decisions.
 */

#ifndef GEMINI_API_STORE_HH
#define GEMINI_API_STORE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/api/service.hh"

namespace gemini::api {

/** One stored result, as listed by ResultStore::list(). */
struct StoreEntry
{
    std::uint64_t hash = 0;
    std::string path;           ///< the .result.json file
    std::uint64_t bytes = 0;    ///< size of that file
    bool hasJournal = false;    ///< a rung journal exists for this hash
    int poisoned = 0;           ///< quarantined candidates in the result
};

/** What a garbage-collection pass removed (or, dry run, would remove). */
struct StoreGcStats
{
    int quarantined = 0; ///< corrupt records previously renamed aside
    int tmpFiles = 0;    ///< temp files orphaned by crashed publishes
    int journals = 0;    ///< journals of runs whose result is stored
    int metaFiles = 0;   ///< job metas of runs whose result is stored
    std::vector<std::string> paths; ///< every victim, for reporting
};

/** How a ResultStore claims its directory (see the file comment). */
enum class StoreOwnership
{
    Shared,   ///< per-operation locking only (CLI runs, tests)
    Exclusive ///< plus a lifetime pid-stamped lock (the serve daemon)
};

class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store at `dir`. Exclusive ownership
     * throws std::runtime_error naming the holding pid when another
     * process (or another store instance in this one) already owns the
     * directory.
     */
    explicit ResultStore(std::string dir,
                         StoreOwnership ownership = StoreOwnership::Shared);

    /** Releases the ownership lock, if exclusive. */
    ~ResultStore();

    const std::string &dir() const { return dir_; }

    /**
     * Look up a result by hash, verifying the stored canonical spec text
     * against `canonicalSpec`. Returns nullptr on miss, on a detected
     * hash collision (record left intact), and on a corrupt record
     * (record quarantined). Never serves bad data.
     */
    std::shared_ptr<const ExperimentResult>
    get(std::uint64_t hash, const std::string &canonicalSpec);

    /**
     * Publish a completed result under its spec's canonical hash.
     * Returns false with an actionable message on I/O failure.
     * Fault-injection site: "store.write".
     */
    bool put(const ExperimentResult &result, std::string *error = nullptr);

    /** Write the spec sidecar (idempotent; best-effort). */
    void putSpec(const ExperimentSpec &spec, std::uint64_t hash);

    /** Load a spec sidecar (for `gemini resume <hash>`). */
    std::optional<ExperimentSpec> loadSpec(std::uint64_t hash,
                                           std::string *error = nullptr);

    /** Every readable .result.json entry, sorted by hash. */
    std::vector<StoreEntry> list();

    /** Corrupt records renamed aside by get() and not yet collected. */
    int quarantinedFiles();

    /**
     * Remove quarantined records, orphan temp files, spent journals.
     * With `dryRun` nothing is deleted; the stats report what a real
     * pass would remove (counts and paths).
     */
    StoreGcStats gc(bool dryRun = false);

    /** Path of the rung journal for `hash` (file may not exist). */
    std::string journalPath(std::uint64_t hash) const;

    /** Delete the journal for `hash` (after its result is stored). */
    void removeJournal(std::uint64_t hash);

    /**
     * Hashes with a rung journal but no stored result: runs a crashed
     * or killed process left mid-flight. The serve daemon resumes these
     * on startup (sorted, so recovery order is deterministic).
     */
    std::vector<std::uint64_t> orphanJournals();

    /**
     * Scheduler-side job metadata (tenant, priority, weight) published
     * next to the spec sidecar as `<hash>.meta.json`, so a restarted
     * daemon re-admits recovered jobs under their original identity.
     * Best-effort, like putSpec.
     */
    void putJobMeta(std::uint64_t hash, const common::json::Value &meta);

    std::optional<common::json::Value> loadJobMeta(std::uint64_t hash);

  private:
    class DirLock;

    std::string resultPath(std::uint64_t hash) const;
    std::string specPath(std::uint64_t hash) const;
    std::string metaPath(std::uint64_t hash) const;

    std::string dir_;
    std::string lockPath_;
    std::string ownerPath_;
    int ownerFd_ = -1; ///< held open for the lifetime when exclusive
    std::mutex mu_; ///< serializes in-process access; DirLock handles
                    ///< cross-process
};

} // namespace gemini::api

#endif // GEMINI_API_STORE_HH
