#include "src/api/store.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/api/json_reader.hh"
#include "src/common/fault_injection.hh"
#include "src/common/fs_atomic.hh"
#include "src/common/json.hh"
#include "src/common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define GEMINI_HAVE_FLOCK 1
#endif

namespace gemini::api {

namespace fs = std::filesystem;
using common::json::Value;

namespace {

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

/** Rename a corrupt record aside so it is never parsed again. */
void
quarantine(const std::string &path, const std::string &why)
{
    const std::string aside = path + ".quarantined";
    std::error_code ec;
    fs::rename(path, aside, ec);
    if (ec) {
        // Renaming failed (e.g. read-only store): removing would also
        // fail, so just warn — get() already reported a miss.
        GEMINI_WARN("store: cannot quarantine ", path, ": ", ec.message());
        return;
    }
    GEMINI_WARN("store: quarantined ", path, " (", why,
                "); it will be recomputed, never served");
}

/**
 * Poisoned candidates inside a stored result, by raw JSON navigation
 * (payload.result.dse.records[*].poisoned) — cheap relative to a full
 * ExperimentResult::fromJson, and 0 for unreadable or map-mode records.
 */
int
countPoisoned(const std::string &path)
{
    std::string text;
    if (!readFile(path, text))
        return 0;
    const std::optional<Value> v = common::json::parse(text, nullptr);
    if (!v || !v->isObject())
        return 0;
    const Value *node = v->find("payload");
    for (const char *key : {"result", "dse", "records"}) {
        if (!node || !node->isObject())
            return 0;
        node = node->find(key);
    }
    if (!node || !node->isArray())
        return 0;
    int poisoned = 0;
    for (const Value &rec : node->asArray()) {
        if (!rec.isObject())
            continue;
        const Value *p = rec.find("poisoned");
        if (p && p->isBool() && p->asBool())
            ++poisoned;
    }
    return poisoned;
}

} // namespace

/**
 * Cross-process advisory lock on the store directory, held for the
 * duration of one operation. flock, not fcntl: flock locks follow the
 * open file description, so two ResultStore instances in one process
 * exclude each other too (each operation opens its own fd).
 */
class ResultStore::DirLock
{
  public:
    explicit DirLock(const std::string &lockPath)
    {
#ifdef GEMINI_HAVE_FLOCK
        fd_ = ::open(lockPath.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC,
                     0644);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
        if (fd_ < 0)
            GEMINI_WARN("store: cannot lock ", lockPath, ": ",
                        std::strerror(errno),
                        " (continuing without cross-process exclusion)");
#else
        (void)lockPath;
#endif
    }

    ~DirLock()
    {
#ifdef GEMINI_HAVE_FLOCK
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
#endif
    }

    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;

  private:
#ifdef GEMINI_HAVE_FLOCK
    int fd_ = -1;
#endif
};

ResultStore::ResultStore(std::string dir, StoreOwnership ownership)
    : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    GEMINI_ASSERT(!ec, "cannot create store directory ", dir_, ": ",
                  ec.message());
    lockPath_ = (fs::path(dir_) / ".lock").string();
    ownerPath_ = (fs::path(dir_) / ".owner").string();
    if (ownership != StoreOwnership::Exclusive)
        return;

#ifdef GEMINI_HAVE_FLOCK
    // Lifetime ownership claim: flock follows the open file description,
    // so a second exclusive opener — another process, or another
    // instance in this one — fails immediately instead of blocking, and
    // the lock evaporates with the fd on any exit, including SIGKILL
    // (no stale-lockfile recovery dance).
    ownerFd_ = ::open(ownerPath_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                      0644);
    if (ownerFd_ < 0)
        throw std::runtime_error("result store " + dir_ +
                                 ": cannot open " + ownerPath_ + ": " +
                                 std::strerror(errno));
    if (::flock(ownerFd_, LOCK_EX | LOCK_NB) != 0) {
        // Surface WHO holds it: the owner stamped its pid into the file.
        char buf[32] = {0};
        const ssize_t n = ::pread(ownerFd_, buf, sizeof buf - 1, 0);
        ::close(ownerFd_);
        ownerFd_ = -1;
        std::string holder = "another process";
        if (n > 0) {
            const long pid = std::strtol(buf, nullptr, 10);
            if (pid > 0)
                holder = "pid " + std::to_string(pid);
        }
        throw std::runtime_error(
            "result store " + dir_ + " is locked by " + holder + " (" +
            ownerPath_ + "); stop that daemon or point this one at a "
            "different --store directory");
    }
    // Claimed: stamp our pid for the next contender's error message.
    const std::string pid = std::to_string(::getpid()) + "\n";
    if (::ftruncate(ownerFd_, 0) != 0 ||
        ::pwrite(ownerFd_, pid.data(), pid.size(), 0) < 0)
        GEMINI_WARN("store: cannot stamp pid into ", ownerPath_, ": ",
                    std::strerror(errno));
#else
    GEMINI_WARN("store: exclusive ownership unsupported on this "
                "platform; continuing shared");
#endif
}

ResultStore::~ResultStore()
{
#ifdef GEMINI_HAVE_FLOCK
    if (ownerFd_ >= 0) {
        ::flock(ownerFd_, LOCK_UN);
        ::close(ownerFd_);
    }
#endif
}

std::string
ResultStore::resultPath(std::uint64_t hash) const
{
    return (fs::path(dir_) / (hashHex(hash) + ".result.json")).string();
}

std::string
ResultStore::specPath(std::uint64_t hash) const
{
    return (fs::path(dir_) / (hashHex(hash) + ".spec.json")).string();
}

std::string
ResultStore::journalPath(std::uint64_t hash) const
{
    return (fs::path(dir_) / (hashHex(hash) + ".journal")).string();
}

std::string
ResultStore::metaPath(std::uint64_t hash) const
{
    return (fs::path(dir_) / (hashHex(hash) + ".meta.json")).string();
}

std::shared_ptr<const ExperimentResult>
ResultStore::get(std::uint64_t hash, const std::string &canonicalSpec)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);

    const std::string path = resultPath(hash);
    std::string text;
    if (!readFile(path, text))
        return nullptr; // plain miss

    std::string error;
    const std::optional<Value> v = common::json::parse(text, &error);
    if (!v) {
        quarantine(path, "unparseable: " + error);
        return nullptr;
    }
    ObjectReader r(*v, "store", &error);
    std::string checksum;
    r.getString("checksum", checksum);
    const Value *payload = r.require("payload");
    if (!payload || !r.finish()) {
        quarantine(path, error);
        return nullptr;
    }
    if (hashHex(common::json::fnv1a64(payload->canonical())) != checksum) {
        quarantine(path, "checksum mismatch (bit rot or torn write)");
        return nullptr;
    }

    ObjectReader pr(*payload, "store.payload", &error);
    std::string storedSpec;
    pr.getString("spec_canonical", storedSpec);
    const Value *resultv = pr.require("result");
    if (!resultv || !pr.finish()) {
        quarantine(path, error);
        return nullptr;
    }
    if (storedSpec != canonicalSpec) {
        // A genuine 64-bit hash collision: the record is intact and
        // belongs to a *different* experiment. Leave it alone; the
        // colliding spec runs for real.
        GEMINI_WARN("store: hash ", hashHex(hash), " collides with a "
                    "different spec; recomputing instead of serving it");
        return nullptr;
    }

    std::optional<ExperimentResult> parsed =
        ExperimentResult::fromJson(*resultv, &error);
    if (!parsed) {
        quarantine(path, error);
        return nullptr;
    }
    return std::make_shared<const ExperimentResult>(std::move(*parsed));
}

bool
ResultStore::put(const ExperimentResult &result, std::string *error)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);

    if (common::fault::shouldFail("store.write")) {
        if (error)
            *error = "cannot write store record " +
                     resultPath(result.specHash) +
                     ": " + std::strerror(ENOSPC);
        return false;
    }

    Value payload = Value::object();
    payload.set("spec_canonical", result.spec.canonicalText());
    payload.set("result", result.toJson());
    const std::string canonical = payload.canonical();

    // Envelope spliced around the exact canonical bytes that were
    // checksummed (same convention as the rung journal).
    std::string text = "{\"checksum\":\"";
    text += hashHex(common::json::fnv1a64(canonical));
    text += "\",\"payload\":";
    text += canonical;
    text += "}\n";

    return common::writeFileAtomic(resultPath(result.specHash), text,
                                   error);
}

void
ResultStore::putSpec(const ExperimentSpec &spec, std::uint64_t hash)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    std::string error;
    if (!common::writeFileAtomic(specPath(hash),
                                 spec.toJson().dump(2) + "\n", &error))
        GEMINI_WARN("store: ", error);
}

std::optional<ExperimentSpec>
ResultStore::loadSpec(std::uint64_t hash, std::string *error)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    std::string text;
    const std::string path = specPath(hash);
    if (!readFile(path, text)) {
        if (error)
            *error = "no spec sidecar " + path +
                     " (was this experiment ever submitted here?)";
        return std::nullopt;
    }
    return ExperimentSpec::fromJsonText(text, error);
}

std::vector<StoreEntry>
ResultStore::list()
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);

    std::vector<StoreEntry> entries;
    std::error_code ec;
    for (const fs::directory_entry &de : fs::directory_iterator(dir_, ec)) {
        const std::string name = de.path().filename().string();
        const std::string suffix = ".result.json";
        if (name.size() != 16 + suffix.size() ||
            name.compare(16, suffix.size(), suffix) != 0)
            continue;
        const std::string hex = name.substr(0, 16);
        char *end = nullptr;
        const std::uint64_t hash = std::strtoull(hex.c_str(), &end, 16);
        if (end != hex.c_str() + hex.size())
            continue;
        StoreEntry e;
        e.hash = hash;
        e.path = de.path().string();
        std::error_code sec;
        e.bytes = static_cast<std::uint64_t>(de.file_size(sec));
        e.hasJournal = fs::exists(journalPath(hash));
        e.poisoned = countPoisoned(e.path);
        entries.push_back(std::move(e));
    }
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntry &a, const StoreEntry &b) {
                  return a.hash < b.hash;
              });
    return entries;
}

int
ResultStore::quarantinedFiles()
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    int count = 0;
    std::error_code ec;
    for (const fs::directory_entry &de : fs::directory_iterator(dir_, ec)) {
        const std::string name = de.path().filename().string();
        if (name.size() > 12 &&
            name.compare(name.size() - 12, 12, ".quarantined") == 0)
            ++count;
    }
    return count;
}

StoreGcStats
ResultStore::gc(bool dryRun)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);

    StoreGcStats stats;
    std::error_code ec;
    std::vector<fs::path> doomed_quarantined, doomed_tmp, doomed_journals,
        doomed_metas;
    for (const fs::directory_entry &de : fs::directory_iterator(dir_, ec)) {
        const std::string name = de.path().filename().string();
        if (name.size() > 12 &&
            name.compare(name.size() - 12, 12, ".quarantined") == 0) {
            doomed_quarantined.push_back(de.path());
        } else if (name.find(".tmp.") != std::string::npos) {
            doomed_tmp.push_back(de.path());
        } else if (name.size() == 16 + 8 &&
                   name.compare(16, 8, ".journal") == 0) {
            // A journal whose result is already stored is spent; one
            // without a result belongs to a resumable run — keep it.
            const std::string result_file = name.substr(0, 16) +
                                            ".result.json";
            if (fs::exists(fs::path(dir_) / result_file))
                doomed_journals.push_back(de.path());
        } else if (name.size() == 16 + 10 &&
                   name.compare(16, 10, ".meta.json") == 0) {
            // Same spent-vs-resumable rule as journals: a meta whose
            // result is stored has served its recovery purpose.
            const std::string result_file = name.substr(0, 16) +
                                            ".result.json";
            if (fs::exists(fs::path(dir_) / result_file))
                doomed_metas.push_back(de.path());
        }
    }
    const auto removeAll = [&](const std::vector<fs::path> &paths) {
        int removed = 0;
        for (const fs::path &p : paths) {
            stats.paths.push_back(p.string());
            if (dryRun) {
                ++removed;
                continue;
            }
            std::error_code rec;
            if (fs::remove(p, rec))
                ++removed;
        }
        return removed;
    };
    stats.quarantined = removeAll(doomed_quarantined);
    stats.tmpFiles = removeAll(doomed_tmp);
    stats.journals = removeAll(doomed_journals);
    stats.metaFiles = removeAll(doomed_metas);
    return stats;
}

void
ResultStore::removeJournal(std::uint64_t hash)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    std::error_code ec;
    fs::remove(journalPath(hash), ec);
}

std::vector<std::uint64_t>
ResultStore::orphanJournals()
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    std::vector<std::uint64_t> orphans;
    std::error_code ec;
    for (const fs::directory_entry &de : fs::directory_iterator(dir_, ec)) {
        const std::string name = de.path().filename().string();
        if (name.size() != 16 + 8 || name.compare(16, 8, ".journal") != 0)
            continue;
        const std::string hex = name.substr(0, 16);
        char *end = nullptr;
        const std::uint64_t hash = std::strtoull(hex.c_str(), &end, 16);
        if (end != hex.c_str() + hex.size())
            continue;
        if (!fs::exists(fs::path(dir_) / (hex + ".result.json")))
            orphans.push_back(hash);
    }
    std::sort(orphans.begin(), orphans.end());
    return orphans;
}

void
ResultStore::putJobMeta(std::uint64_t hash, const Value &meta)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    std::string error;
    if (!common::writeFileAtomic(metaPath(hash), meta.dump(2) + "\n",
                                 &error))
        GEMINI_WARN("store: ", error);
}

std::optional<Value>
ResultStore::loadJobMeta(std::uint64_t hash)
{
    std::lock_guard lock(mu_);
    DirLock dirLock(lockPath_);
    std::string text;
    if (!readFile(metaPath(hash), text))
        return std::nullopt;
    return common::json::parse(text, nullptr);
}

} // namespace gemini::api
