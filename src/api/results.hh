/**
 * @file
 * JSON round trips for the co-exploration result types. Exported results
 * are self-contained: a DseResult JSON carries every record's full
 * ArchConfig and an LpMapping JSON carries the complete spatial-mapping
 * encoding, so a best mapping can be shipped to another process (or
 * committed as a golden file) and later re-evaluated bit-identically or
 * warm-started via MappingEngine::runFrom.
 *
 * Wire conventions: snake_case keys; infinities (objectives of
 * infeasible candidates) are spelled `null` — JSON has no Inf — and read
 * back as +infinity; readers reject unknown keys with "path.key: reason"
 * messages like the spec reader does.
 */

#ifndef GEMINI_API_RESULTS_HH
#define GEMINI_API_RESULTS_HH

#include <string>

#include "src/arch/arch_config.hh"
#include "src/common/json.hh"
#include "src/cost/mc_evaluator.hh"
#include "src/dse/dse.hh"
#include "src/eval/breakdown.hh"
#include "src/mapping/encoding.hh"
#include "src/mapping/engine.hh"

namespace gemini::api {

// ---- ArchConfig -----------------------------------------------------------

common::json::Value archConfigToJson(const arch::ArchConfig &cfg);
bool archConfigFromJson(const common::json::Value &v,
                        const std::string &path, arch::ArchConfig &out,
                        std::string *error);

// ---- EvalBreakdown --------------------------------------------------------

common::json::Value evalBreakdownToJson(const eval::EvalBreakdown &b);
bool evalBreakdownFromJson(const common::json::Value &v,
                           const std::string &path, eval::EvalBreakdown &out,
                           std::string *error);

// ---- CostBreakdown (MC) ---------------------------------------------------

common::json::Value costBreakdownToJson(const cost::CostBreakdown &b);
bool costBreakdownFromJson(const common::json::Value &v,
                           const std::string &path, cost::CostBreakdown &out,
                           std::string *error);

// ---- LpMapping ------------------------------------------------------------

common::json::Value lpMappingToJson(const mapping::LpMapping &m);

/**
 * Structural parse only — callers re-validate against their graph/arch
 * with mapping::checkMappingValid before evaluating or warm-starting.
 */
bool lpMappingFromJson(const common::json::Value &v, const std::string &path,
                       mapping::LpMapping &out, std::string *error);

// ---- MappingResult --------------------------------------------------------

common::json::Value mappingResultToJson(const mapping::MappingResult &r);
bool mappingResultFromJson(const common::json::Value &v,
                           const std::string &path,
                           mapping::MappingResult &out, std::string *error);

// ---- DseResult ------------------------------------------------------------

common::json::Value dseResultToJson(const dse::DseResult &r);
bool dseResultFromJson(const common::json::Value &v, const std::string &path,
                       dse::DseResult &out, std::string *error);

} // namespace gemini::api

#endif // GEMINI_API_RESULTS_HH
