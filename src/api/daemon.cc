#include "src/api/daemon.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "src/common/json.hh"

namespace gemini::api {

using common::json::Value;

namespace {

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
    return buf;
}

net::HttpResponse
errorResponse(int status, const std::string &message)
{
    Value v = Value::object();
    v.set("error", message);
    return net::jsonResponse(status, v.dump());
}

/** Strict base-10 integer; nullopt on junk (no silent zero). */
std::optional<long>
parseInt(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    return value;
}

std::optional<bool>
parseBool(const std::string &text)
{
    if (text == "1" || text == "true")
        return true;
    if (text == "0" || text == "false")
        return false;
    return std::nullopt;
}

Value
jobInfoToJson(const JobInfo &info)
{
    Value v = Value::object();
    v.set("id", info.id);
    v.set("spec_hash", hashHex(info.specHash));
    v.set("tenant", info.tenant);
    v.set("name", info.name);
    v.set("priority", info.priority);
    v.set("weight", info.weight);
    v.set("state", jobStateName(info.state));
    v.set("deduped", info.deduped);
    v.set("from_cache", info.fromCache);
    v.set("submit_seq", info.submitSeq);
    v.set("dispatch_seq", info.dispatchSeq);
    if (info.state == JobState::Queued)
        v.set("queue_position", info.queuePosition);
    v.set("events", info.events);
    if (!info.error.empty())
        v.set("error", info.error);
    return v;
}

const char *
eventKindName(ProgressEvent::Kind kind)
{
    return kind == ProgressEvent::Kind::RungEntered ? "rung_entered"
                                                    : "rung_finished";
}

Value
eventToJson(const JobEvent &event)
{
    Value v = Value::object();
    v.set("seq", event.seq);
    v.set("kind", eventKindName(event.event.kind));
    v.set("rung", event.event.rung);
    v.set("entered", event.event.entered);
    v.set("advanced", event.event.advanced);
    v.set("pruned_bound", event.event.prunedBound);
    v.set("pruned_rank", event.event.prunedRank);
    // Infinity is not JSON; "none" mirrors setExtended in results.cc.
    if (event.event.bestObjective ==
        std::numeric_limits<double>::infinity())
        v.set("best_objective", "none");
    else
        v.set("best_objective", event.event.bestObjective);
    return v;
}

/** The DseStats ledger for status payloads (flags + rung table). */
Value
statsToJson(const dse::DseStats &stats)
{
    Value rungs = Value::array();
    for (const auto &rs : stats.rungs) {
        Value r = Value::object();
        r.set("name", rs.name);
        r.set("entered", rs.entered);
        r.set("advanced", rs.advanced);
        r.set("pruned_bound", rs.prunedBound);
        r.set("pruned_rank", rs.prunedRank);
        rungs.push(std::move(r));
    }
    Value v = Value::object();
    v.set("scheduled", stats.scheduled);
    v.set("cancelled", stats.cancelled);
    v.set("truncated", stats.truncated);
    v.set("resumed_rung", stats.resumedRung);
    v.set("rungs", std::move(rungs));
    return v;
}

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> segments;
    std::size_t start = 0;
    while (start < path.size()) {
        if (path[start] == '/') {
            ++start;
            continue;
        }
        std::size_t end = path.find('/', start);
        if (end == std::string::npos)
            end = path.size();
        segments.push_back(path.substr(start, end - start));
        start = end;
    }
    return segments;
}

} // namespace

Daemon::Daemon(JobScheduler &scheduler, DaemonOptions options)
    : scheduler_(scheduler), options_(std::move(options)),
      server_([this](const net::HttpRequest &rq,
                     net::ResponseWriter &w) { handle(rq, w); },
              options_.server)
{
}

bool
Daemon::start(std::string *error)
{
    return server_.start(error);
}

void
Daemon::handle(const net::HttpRequest &request, net::ResponseWriter &w)
{
    const std::vector<std::string> seg = splitPath(request.path);

    if (seg.size() == 1 && seg[0] == "healthz") {
        if (request.method != "GET" && request.method != "HEAD") {
            w.send(errorResponse(405, "healthz is GET-only"));
            return;
        }
        handleHealth(w);
        return;
    }

    if (seg.size() >= 2 && seg[0] == "v1" && seg[1] == "jobs") {
        if (seg.size() == 2) {
            if (request.method == "POST")
                handleSubmit(request, w);
            else if (request.method == "GET")
                handleList(w);
            else
                w.send(errorResponse(405, "jobs collection supports GET "
                                          "(list) and POST (submit)"));
            return;
        }
        const std::string &id = seg[2];
        if (seg.size() == 3) {
            if (request.method == "GET")
                handleStatus(id, w);
            else if (request.method == "DELETE")
                handleCancel(id, w);
            else
                w.send(errorResponse(405, "a job supports GET (status) "
                                          "and DELETE (cancel)"));
            return;
        }
        if (seg.size() == 4 && seg[3] == "result") {
            if (request.method != "GET")
                w.send(errorResponse(405, "result is GET-only"));
            else
                handleResult(id, w);
            return;
        }
        if (seg.size() == 4 && seg[3] == "events") {
            if (request.method != "GET")
                w.send(errorResponse(405, "events is GET-only"));
            else
                handleEvents(request, id, w);
            return;
        }
    }

    w.send(errorResponse(404, "no such endpoint: " + request.method + " " +
                                  request.path));
}

void
Daemon::handleHealth(net::ResponseWriter &w)
{
    Value v = Value::object();
    v.set("ok", !scheduler_.stopping());
    v.set("pending", scheduler_.pendingJobs());
    v.set("running", scheduler_.runningJobs());
    w.send(net::jsonResponse(200, v.dump()));
}

void
Daemon::handleSubmit(const net::HttpRequest &request,
                     net::ResponseWriter &w)
{
    std::string error;
    const std::optional<Value> body =
        common::json::parse(request.body, &error);
    if (!body) {
        w.send(errorResponse(400, "request body: " + error));
        return;
    }

    JobRequest jr;
    const Value *specValue = &*body;
    if (body->isObject() && body->find("spec") != nullptr) {
        // Wrapper form: identity fields beside the spec.
        specValue = body->find("spec");
        if (const Value *t = body->find("tenant")) {
            if (!t->isString()) {
                w.send(errorResponse(400, "tenant: expected a string"));
                return;
            }
            jr.tenant = t->asString();
        }
        if (const Value *p = body->find("priority")) {
            if (!p->isNumber()) {
                w.send(errorResponse(400, "priority: expected a number"));
                return;
            }
            jr.priority = static_cast<int>(p->asNumber());
        }
        if (const Value *wt = body->find("weight")) {
            if (!wt->isNumber()) {
                w.send(errorResponse(400, "weight: expected a number"));
                return;
            }
            jr.weight = static_cast<int>(wt->asNumber());
        }
        if (const Value *r = body->find("resume")) {
            if (!r->isBool()) {
                w.send(errorResponse(400, "resume: expected a bool"));
                return;
            }
            jr.resume = r->asBool();
        }
    }

    // Query parameters win over the wrapper (identity in the URL).
    if (const std::string t = request.queryParam("tenant"); !t.empty())
        jr.tenant = t;
    if (const std::string p = request.queryParam("priority"); !p.empty()) {
        const std::optional<long> value = parseInt(p);
        if (!value) {
            w.send(errorResponse(400, "priority: not an integer: " + p));
            return;
        }
        jr.priority = static_cast<int>(*value);
    }
    if (const std::string wt = request.queryParam("weight"); !wt.empty()) {
        const std::optional<long> value = parseInt(wt);
        if (!value) {
            w.send(errorResponse(400, "weight: not an integer: " + wt));
            return;
        }
        jr.weight = static_cast<int>(*value);
    }
    if (const std::string r = request.queryParam("resume"); !r.empty()) {
        const std::optional<bool> value = parseBool(r);
        if (!value) {
            w.send(errorResponse(400, "resume: expected 0/1/true/false"));
            return;
        }
        jr.resume = *value;
    }

    std::optional<ExperimentSpec> spec =
        ExperimentSpec::fromJson(*specValue, &error);
    if (!spec) {
        w.send(errorResponse(400, "spec: " + error));
        return;
    }
    jr.spec = std::move(*spec);

    const std::optional<JobInfo> info = scheduler_.submit(std::move(jr),
                                                          &error);
    if (!info) {
        const int status =
            scheduler_.stopping() ? 503 : 400;
        w.send(errorResponse(status, error));
        return;
    }
    // 202 = admitted and will run; 200 = answered at admission (cache
    // hit or attached to an existing job).
    const bool instant = info->deduped || info->state == JobState::Done;
    w.send(net::jsonResponse(instant ? 200 : 202,
                             jobInfoToJson(*info).dump()));
}

void
Daemon::handleList(net::ResponseWriter &w)
{
    Value jobs = Value::array();
    for (const JobInfo &info : scheduler_.list())
        jobs.push(jobInfoToJson(info));
    Value v = Value::object();
    v.set("jobs", std::move(jobs));
    w.send(net::jsonResponse(200, v.dump()));
}

void
Daemon::handleStatus(const std::string &id, net::ResponseWriter &w)
{
    const std::optional<JobInfo> info = scheduler_.info(id);
    if (!info) {
        w.send(errorResponse(404, "no such job: " + id));
        return;
    }
    Value v = jobInfoToJson(*info);
    const std::shared_ptr<const ExperimentResult> result =
        scheduler_.result(id);
    v.set("result_ready", result != nullptr);
    if (result && result->spec.mode == ExperimentSpec::Mode::Dse)
        v.set("stats", statsToJson(result->dse.stats));
    w.send(net::jsonResponse(200, v.dump()));
}

void
Daemon::handleResult(const std::string &id, net::ResponseWriter &w)
{
    const std::optional<JobInfo> info = scheduler_.info(id);
    if (!info) {
        w.send(errorResponse(404, "no such job: " + id));
        return;
    }
    const std::shared_ptr<const ExperimentResult> result =
        scheduler_.result(id);
    if (!result) {
        w.send(errorResponse(
            409, "job " + id + " is " + jobStateName(info->state) +
                     "; no result yet (GET /v1/jobs/" + id +
                     "/events to follow progress)"));
        return;
    }
    net::HttpResponse response =
        net::jsonResponse(200, result->toJson().dump(2));
    w.send(response);
}

void
Daemon::handleCancel(const std::string &id, net::ResponseWriter &w)
{
    if (!scheduler_.cancel(id)) {
        w.send(errorResponse(404, "no such job: " + id));
        return;
    }
    const std::optional<JobInfo> info = scheduler_.info(id);
    Value v = Value::object();
    v.set("cancelled", true);
    if (info)
        v.set("state", jobStateName(info->state));
    w.send(net::jsonResponse(200, v.dump()));
}

void
Daemon::handleEvents(const net::HttpRequest &request, const std::string &id,
                     net::ResponseWriter &w)
{
    if (!scheduler_.info(id)) {
        w.send(errorResponse(404, "no such job: " + id));
        return;
    }
    std::uint64_t after = 0;
    if (const std::string a = request.queryParam("after"); !a.empty()) {
        const std::optional<long> value = parseInt(a);
        if (!value || *value < 0) {
            w.send(errorResponse(400, "after: not a sequence number"));
            return;
        }
        after = static_cast<std::uint64_t>(*value);
    }

    net::HttpResponse head;
    head.status = 200;
    head.setHeader("Content-Type", "application/x-ndjson");
    if (!w.beginStream(std::move(head)))
        return;

    for (;;) {
        const std::vector<JobEvent> batch =
            scheduler_.waitEvents(id, after, options_.eventPollSeconds);
        for (const JobEvent &event : batch) {
            if (!w.writeChunk(eventToJson(event).dump() + "\n"))
                return; // peer gone / injected fault: drop the stream
            after = event.seq;
        }
        const std::optional<JobInfo> info = scheduler_.info(id);
        if (!info)
            break;
        const bool terminal = info->state == JobState::Done ||
                              info->state == JobState::Failed ||
                              info->state == JobState::Cancelled;
        if (terminal && after >= info->events) {
            Value fin = Value::object();
            fin.set("done", true);
            fin.set("state", jobStateName(info->state));
            fin.set("events", info->events);
            if (!info->error.empty())
                fin.set("error", info->error);
            w.writeChunk(fin.dump() + "\n");
            break;
        }
        if (w.serverStopping() || w.broken())
            break;
    }
    w.endStream();
}

} // namespace gemini::api
