#include "src/api/scheduler.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "src/common/logging.hh"

namespace gemini::api {

namespace {

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
    return buf;
}

} // namespace

std::string
jobId(std::uint64_t specHash, const std::string &tenant)
{
    return hashHex(specHash) + "-" + tenant;
}

bool
validTenantName(const std::string &tenant)
{
    if (tenant.empty() || tenant.size() > 64)
        return false;
    return std::all_of(tenant.begin(), tenant.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
               c == '_' || c == '-';
    });
}

JobScheduler::JobScheduler(ExplorationService &service,
                           SchedulerOptions options)
    : service_(service), options_(options)
{
    options_.maxConcurrentJobs = std::max(1, options_.maxConcurrentJobs);
    options_.quantum = std::max(1, options_.quantum);
    paused_ = options_.startPaused;
}

void
JobScheduler::resume()
{
    std::unique_lock lock(mu_);
    if (!paused_)
        return;
    paused_ = false;
    pumpLocked();
    cv_.notify_all();
}

JobScheduler::~JobScheduler()
{
    stop(/*cancelJobs=*/true);
}

bool
JobScheduler::stopping() const
{
    std::lock_guard lock(mu_);
    return stopping_;
}

std::size_t
JobScheduler::pendingJobs()
{
    std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, tenant] : tenants_)
        n += tenant.queue.size();
    return n;
}

std::size_t
JobScheduler::runningJobs()
{
    std::lock_guard lock(mu_);
    return static_cast<std::size_t>(running_);
}

std::shared_ptr<JobScheduler::Job>
JobScheduler::findLocked(const std::string &id)
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

JobInfo
JobScheduler::infoLocked(const Job &job) const
{
    JobInfo info;
    info.id = job.id;
    info.specHash = job.hash;
    info.tenant = job.request.tenant;
    info.name = job.request.spec.name;
    info.priority = job.request.priority;
    info.weight = job.request.weight;
    info.state = job.state;
    info.fromCache = job.result && job.result->fromCache;
    info.submitSeq = job.submitSeq;
    info.dispatchSeq = job.dispatchSeq;
    info.events = job.events.size();
    info.error = job.error;
    if (job.state == JobState::Queued) {
        const auto t = tenants_.find(job.request.tenant);
        if (t != tenants_.end()) {
            const auto &q = t->second.queue;
            for (std::size_t i = 0; i < q.size(); ++i)
                if (q[i]->id == job.id) {
                    info.queuePosition = i;
                    break;
                }
        }
    }
    return info;
}

/**
 * The DRR core. Invariants: rotation_ holds exactly the tenants with a
 * nonempty queue, in first-enqueue order; cursor_ points at the tenant
 * whose "visit" is in progress. A visit tops the tenant's deficit up by
 * quantum x weight once, then dispatches one job per deficit unit until
 * the deficit or the queue runs dry — only then does the cursor move.
 * When the concurrency slots fill mid-visit, the loop simply returns;
 * the next pump (a job finished) resumes the same visit with the
 * remaining deficit, so slot availability never distorts the ratios —
 * and nothing here reads a clock or a thread id, which is what makes
 * dispatch order a pure function of the submission sequence.
 */
void
JobScheduler::pumpLocked()
{
    std::vector<std::shared_ptr<Job>> ready;
    while (!stopping_ && !paused_ &&
           running_ < options_.maxConcurrentJobs && !rotation_.empty()) {
        if (cursor_ >= rotation_.size())
            cursor_ = 0;
        Tenant &tenant = tenants_[rotation_[cursor_]];
        if (tenant.deficit < 1)
            tenant.deficit +=
                options_.quantum * std::max(1, tenant.weight);

        while (tenant.deficit >= 1 && !tenant.queue.empty() &&
               running_ < options_.maxConcurrentJobs) {
            std::shared_ptr<Job> job = tenant.queue.front();
            tenant.queue.pop_front();
            tenant.deficit -= 1;
            dispatchLocked(job);
            ready.push_back(std::move(job));
        }

        if (tenant.queue.empty()) {
            // Idle tenants carry no credit into their next burst.
            tenant.deficit = 0;
            rotation_.erase(rotation_.begin() +
                            static_cast<std::ptrdiff_t>(cursor_));
            if (cursor_ >= rotation_.size())
                cursor_ = 0;
        } else if (tenant.deficit < 1) {
            cursor_ = (cursor_ + 1) % rotation_.size();
        }
        // else: slots filled mid-visit — resume here on the next pump.
    }

    // The service submit (store I/O, controller bookkeeping) and the
    // waiter spawn happen outside mu_: a service controller thread may
    // be blocked on our progress callback, and submit() joining it while
    // we hold mu_ would deadlock.
    if (ready.empty())
        return;
    mu_.unlock();
    for (const std::shared_ptr<Job> &job : ready) {
        SubmitOptions options;
        options.resume = job->request.resume;
        options.progress = [this, job](const ProgressEvent &event) {
            std::lock_guard lock(mu_);
            job->events.push_back(event);
            cv_.notify_all();
        };
        JobHandle handle =
            service_.submit(job->request.spec, std::move(options));

        Waiter waiter;
        waiter.done = std::make_shared<std::atomic<bool>>(false);
        waiter.thread = std::thread(
            [this, job, handle, done = waiter.done]() mutable {
                handle.wait();
                {
                    std::unique_lock lock(mu_);
                    job->handle = handle;
                    finishJobLocked(job);
                    pumpLocked(); // NOTE: may unlock/relock mu_
                    cv_.notify_all();
                }
                done->store(true, std::memory_order_release);
            });
        {
            std::lock_guard lock(mu_);
            job->handle = handle;
            if (job->cancelRequested)
                handle.cancel();
            waiters_.push_back(std::move(waiter));
        }
    }
    mu_.lock();
}

void
JobScheduler::dispatchLocked(const std::shared_ptr<Job> &job)
{
    job->state = JobState::Running;
    job->dispatchSeq = ++dispatchCounter_;
    ++running_;
}

void
JobScheduler::finishJobLocked(const std::shared_ptr<Job> &job)
{
    std::shared_ptr<const ExperimentResult> result = job->handle.result();
    job->result = result;
    if (!result) {
        job->state = JobState::Failed;
        job->error = "job finished without a result (service bug)";
    } else if (result->failed()) {
        job->state = JobState::Failed;
        job->error = result->error;
    } else if (result->cancelled) {
        job->state = JobState::Cancelled;
    } else {
        job->state = JobState::Done;
    }
    --running_;
}

void
JobScheduler::reapWaitersLocked(std::vector<std::thread> &joinable)
{
    auto keep = waiters_.begin();
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
        if (it->done->load(std::memory_order_acquire)) {
            joinable.push_back(std::move(it->thread));
        } else {
            if (keep != it)
                *keep = std::move(*it);
            ++keep;
        }
    }
    waiters_.erase(keep, waiters_.end());
}

std::optional<JobInfo>
JobScheduler::submit(JobRequest request, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };
    if (!validTenantName(request.tenant))
        return fail("tenant: expected [A-Za-z0-9._-]{1,64}, got \"" +
                    request.tenant + "\"");
    if (request.weight < 1)
        return fail("weight: must be >= 1, got " +
                    std::to_string(request.weight));
    const std::string problems = request.spec.validate();
    if (!problems.empty())
        return fail("invalid spec:\n" + problems);

    const std::string canonical = request.spec.canonicalText();
    const std::uint64_t hash = common::json::fnv1a64(canonical);
    const std::string id = jobId(hash, request.tenant);

    // Admission dedup stage 1 — the known-result fast path (service
    // cache, then store). Outside mu_: lookupCached takes the service
    // lock and may touch disk.
    std::shared_ptr<const ExperimentResult> cached =
        service_.lookupCached(request.spec);

    std::vector<std::thread> finished;
    std::optional<JobInfo> admitted;
    bool persistMeta = false;
    {
        std::unique_lock lock(mu_);
        reapWaitersLocked(finished);
        if (stopping_) {
            lock.unlock();
            for (std::thread &t : finished)
                t.join();
            return fail("scheduler is shutting down");
        }

        // Admission dedup stage 2 — an active (or completed) duplicate
        // of the same tenant: attach instead of queueing a second run.
        // Failed/cancelled terminal jobs do NOT dedup: resubmission is
        // the retry path, and replaces the dead record.
        if (const std::shared_ptr<Job> existing = findLocked(id)) {
            if (!terminalLocked(*existing) ||
                existing->state == JobState::Done) {
                JobInfo info = infoLocked(*existing);
                info.deduped = true;
                admitted = info;
            }
        }

        if (!admitted) {
            auto job = std::make_shared<Job>();
            job->request = std::move(request);
            job->id = id;
            job->hash = hash;
            job->canonical = canonical;
            job->submitSeq = ++submitCounter_;
            jobs_[id] = job; // replaces a failed/cancelled predecessor
            bySubmit_.push_back(job);

            if (cached) {
                job->state = JobState::Done;
                job->result = std::move(cached);
            } else {
                Tenant &tenant = tenants_[job->request.tenant];
                tenant.weight = job->request.weight;
                // Priority order within the tenant: higher first,
                // submission order among equals (stable insert).
                auto pos = tenant.queue.begin();
                while (pos != tenant.queue.end() &&
                       (*pos)->request.priority >= job->request.priority)
                    ++pos;
                tenant.queue.insert(pos, job);
                if (std::find(rotation_.begin(), rotation_.end(),
                              job->request.tenant) == rotation_.end())
                    rotation_.push_back(job->request.tenant);
                persistMeta = true;
                pumpLocked();
            }
            admitted = infoLocked(*job);
            cv_.notify_all();
        }
    }
    for (std::thread &t : finished)
        t.join();

    if (persistMeta && service_.store()) {
        // Identity sidecar for crash recovery: a restarted daemon
        // re-admits this job under the same tenant/priority/weight.
        common::json::Value meta = common::json::Value::object();
        meta.set("tenant", admitted->tenant);
        meta.set("priority", admitted->priority);
        meta.set("weight", admitted->weight);
        service_.store()->putJobMeta(hash, meta);
    }
    return admitted;
}

std::optional<JobInfo>
JobScheduler::info(const std::string &id)
{
    std::lock_guard lock(mu_);
    const std::shared_ptr<Job> job = findLocked(id);
    if (!job)
        return std::nullopt;
    return infoLocked(*job);
}

std::vector<JobInfo>
JobScheduler::list()
{
    std::lock_guard lock(mu_);
    std::vector<JobInfo> infos;
    infos.reserve(bySubmit_.size());
    for (const std::shared_ptr<Job> &job : bySubmit_) {
        // A replaced record (failed job resubmitted) stays in bySubmit_
        // but is no longer the job under its id; skip the shadow.
        if (jobs_.count(job->id) && jobs_.at(job->id) == job)
            infos.push_back(infoLocked(*job));
    }
    return infos;
}

bool
JobScheduler::cancel(const std::string &id)
{
    std::lock_guard lock(mu_);
    const std::shared_ptr<Job> job = findLocked(id);
    if (!job)
        return false;
    if (terminalLocked(*job))
        return true; // idempotent no-op
    if (job->state == JobState::Queued) {
        Tenant &tenant = tenants_[job->request.tenant];
        const auto it = std::find(tenant.queue.begin(),
                                  tenant.queue.end(), job);
        if (it != tenant.queue.end())
            tenant.queue.erase(it);
        if (tenant.queue.empty()) {
            tenant.deficit = 0;
            const auto rot = std::find(rotation_.begin(), rotation_.end(),
                                       job->request.tenant);
            if (rot != rotation_.end()) {
                const std::size_t idx = static_cast<std::size_t>(
                    rot - rotation_.begin());
                rotation_.erase(rot);
                if (idx < cursor_)
                    --cursor_;
                if (cursor_ >= rotation_.size())
                    cursor_ = 0;
            }
        }
        job->state = JobState::Cancelled;
        cv_.notify_all();
        return true;
    }
    // Running: cooperative request; the waiter observes the drain.
    job->cancelRequested = true;
    if (job->handle.valid())
        job->handle.cancel();
    return true;
}

std::shared_ptr<const ExperimentResult>
JobScheduler::result(const std::string &id)
{
    std::lock_guard lock(mu_);
    const std::shared_ptr<Job> job = findLocked(id);
    return job ? job->result : nullptr;
}

std::vector<JobEvent>
JobScheduler::events(const std::string &id, std::uint64_t afterSeq)
{
    std::lock_guard lock(mu_);
    std::vector<JobEvent> out;
    const std::shared_ptr<Job> job = findLocked(id);
    if (!job)
        return out;
    for (std::size_t i = static_cast<std::size_t>(afterSeq);
         i < job->events.size(); ++i)
        out.push_back(JobEvent{i + 1, job->events[i]});
    return out;
}

std::vector<JobEvent>
JobScheduler::waitEvents(const std::string &id, std::uint64_t afterSeq,
                         double timeoutSeconds)
{
    std::unique_lock lock(mu_);
    const std::shared_ptr<Job> job = findLocked(id);
    std::vector<JobEvent> out;
    if (!job)
        return out;
    cv_.wait_for(lock,
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::duration<double>(
                         std::max(0.0, timeoutSeconds))),
                 [&] {
                     return job->events.size() > afterSeq ||
                            terminalLocked(*job) || stopping_;
                 });
    for (std::size_t i = static_cast<std::size_t>(afterSeq);
         i < job->events.size(); ++i)
        out.push_back(JobEvent{i + 1, job->events[i]});
    return out;
}

bool
JobScheduler::wait(const std::string &id, double timeoutSeconds)
{
    std::unique_lock lock(mu_);
    const std::shared_ptr<Job> job = findLocked(id);
    if (!job)
        return false;
    const auto terminal = [&] { return terminalLocked(*job); };
    if (timeoutSeconds < 0.0)
        cv_.wait(lock, terminal);
    else
        cv_.wait_for(lock,
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::duration<double>(timeoutSeconds)),
                     terminal);
    return terminalLocked(*job);
}

int
JobScheduler::recoverInterrupted()
{
    const std::shared_ptr<ResultStore> &store = service_.store();
    if (!store)
        return 0;
    int recovered = 0;
    for (const std::uint64_t hash : store->orphanJournals()) {
        std::string error;
        std::optional<ExperimentSpec> spec =
            store->loadSpec(hash, &error);
        if (!spec) {
            GEMINI_WARN("recovery: journal ", hashHex(hash),
                        " has no loadable spec sidecar (", error,
                        "); leaving it for manual `gemini resume`");
            continue;
        }
        JobRequest request;
        request.resume = true;
        request.spec = std::move(*spec);
        if (const std::optional<common::json::Value> meta =
                store->loadJobMeta(hash)) {
            if (const auto *t = meta->find("tenant");
                t && t->isString() && validTenantName(t->asString()))
                request.tenant = t->asString();
            if (const auto *p = meta->find("priority"); p && p->isNumber())
                request.priority = static_cast<int>(p->asNumber());
            if (const auto *w = meta->find("weight");
                w && w->isNumber() && w->asNumber() >= 1)
                request.weight = static_cast<int>(w->asNumber());
        }
        if (submit(std::move(request), &error)) {
            ++recovered;
        } else {
            GEMINI_WARN("recovery: cannot re-admit journal ",
                        hashHex(hash), ": ", error);
        }
    }
    return recovered;
}

void
JobScheduler::stop(bool cancelJobs)
{
    std::vector<std::thread> joinable;
    {
        std::unique_lock lock(mu_);
        if (!stopping_) {
            if (paused_) { // a paused drain would never finish
                paused_ = false;
                if (!cancelJobs)
                    pumpLocked();
            }
            if (cancelJobs) {
                stopping_ = true; // halts the pump: nothing new dispatches
                for (auto &[name, tenant] : tenants_) {
                    for (const std::shared_ptr<Job> &job : tenant.queue) {
                        job->state = JobState::Cancelled;
                    }
                    tenant.queue.clear();
                    tenant.deficit = 0;
                }
                rotation_.clear();
                cursor_ = 0;
                for (const auto &[id, job] : jobs_) {
                    if (job->state != JobState::Running)
                        continue;
                    job->cancelRequested = true;
                    if (job->handle.valid())
                        job->handle.cancel();
                }
            }
            cv_.notify_all();
            // Drain: running jobs finish (cancelled cooperatively or
            // normally); in drain mode the pump keeps dispatching until
            // the queues are dry.
            cv_.wait(lock, [&] {
                if (running_ > 0)
                    return false;
                for (const auto &[name, tenant] : tenants_)
                    if (!tenant.queue.empty())
                        return false;
                return true;
            });
            stopping_ = true;
        }
        reapWaitersLocked(joinable);
        // Any waiter not yet flagged done is in its epilogue (the job
        // is finished — running_ is 0); join it too.
        for (Waiter &w : waiters_)
            joinable.push_back(std::move(w.thread));
        waiters_.clear();
    }
    for (std::thread &t : joinable)
        if (t.joinable())
            t.join();
}

} // namespace gemini::api
