/**
 * @file
 * PNASNet-5 builder (Liu et al.). The discovered PNASNet-5 cell is
 * reproduced structurally: five blocks, each summing two operations drawn
 * from {separable 3x3/5x5/7x7, max-pool 3x3, 1x1 conv}, whose outputs are
 * concatenated. Separable convolutions are the standard NASNet-family
 * stack (depthwise -> pointwise, twice). The stage depth is configurable
 * (see DESIGN.md: the published Large model stacks more repeats of the
 * identical cell; the cost-model behaviour is preserved).
 */

#include <string>

#include "src/common/logging.hh"
#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

namespace {

/** NASNet separable conv: dw(k,stride) -> pw -> dw(k,1) -> pw. */
LayerId
sep(GraphBuilder &b, const std::string &p, LayerId in, std::int64_t f,
    std::int64_t kernel, std::int64_t stride)
{
    LayerId x = b.depthwise(p + ".dw1", in, kernel, stride, kernel / 2);
    x = b.pointwise(p + ".pw1", x, f);
    x = b.depthwise(p + ".dw2", x, kernel, 1, kernel / 2);
    return b.pointwise(p + ".pw2", x, f);
}

/** Max-pool branch that also matches channel width via a 1x1 conv. */
LayerId
poolBranch(GraphBuilder &b, const std::string &p, LayerId in, std::int64_t f,
           std::int64_t stride)
{
    LayerId x = b.pool(p + ".max", in, 3, stride, 1);
    std::int64_t c, h, w;
    b.shapeOf(x, c, h, w);
    if (c != f)
        x = b.pointwise(p + ".match", x, f);
    return x;
}

/**
 * One PNASNet-5 cell.
 *
 * @param left    h_{i-2} (earlier cell output)
 * @param right   h_{i-1} (previous cell output)
 * @param f       per-block filter count; cell output has 5f channels
 * @param stride  2 for reduction cells
 */
LayerId
cell(GraphBuilder &b, const std::string &p, LayerId left, LayerId right,
     std::int64_t f, std::int64_t stride)
{
    // Squeeze both inputs to f channels; if `left` is at a coarser
    // resolution than `right` (the cell after a reduction), the squeeze
    // also downsamples (factorized-reduction approximation).
    std::int64_t lc, lh, lw, rc, rh, rw;
    b.shapeOf(left, lc, lh, lw);
    b.shapeOf(right, rc, rh, rw);
    const std::int64_t left_stride = (lh > rh) ? 2 : 1;
    LayerId l = b.conv(p + ".sqL", left, f, 1, left_stride, 0);
    LayerId r = b.conv(p + ".sqR", right, f, 1, 1, 0);

    LayerId b0 = b.eltwise(p + ".b0", {sep(b, p + ".b0.sep5", l, f, 5,
                                           stride),
                                       poolBranch(b, p + ".b0", l, f,
                                                  stride)});
    LayerId b1 = b.eltwise(p + ".b1", {sep(b, p + ".b1.sep7", r, f, 7,
                                           stride),
                                       poolBranch(b, p + ".b1", r, f,
                                                  stride)});
    LayerId b2 = b.eltwise(p + ".b2", {sep(b, p + ".b2.sep5", r, f, 5,
                                           stride),
                                       sep(b, p + ".b2.sep3", r, f, 3,
                                           stride)});
    LayerId b3 = b.eltwise(p + ".b3", {sep(b, p + ".b3.sep3", b2, f, 3, 1),
                                       poolBranch(b, p + ".b3", r, f,
                                                  stride)});
    LayerId b4_right = (stride == 1)
                           ? b.pointwise(p + ".b4.pw", r, f)
                           : b.conv(p + ".b4.pw", r, f, 1, stride, 0);
    LayerId b4 = b.eltwise(p + ".b4", {sep(b, p + ".b4.sep3", l, f, 3,
                                           stride),
                                       b4_right});
    return b.concat(p + ".cat", {b0, b1, b2, b3, b4});
}

} // namespace

Graph
pnasnet(int cells_per_stage)
{
    GEMINI_ASSERT(cells_per_stage >= 1, "need at least one cell per stage");
    GraphBuilder b("pnasnet", 3, 331, 331);
    LayerId stem = b.conv("stem", GraphBuilder::kInput, 96, 3, 2, 0);

    int idx = 0;
    auto name = [&idx] { return "cell" + std::to_string(idx++); };

    // Two reduction stem cells (as in PNASNet-5-Large).
    LayerId prev = stem;
    LayerId cur = cell(b, name(), stem, stem, 54, 2);
    LayerId next = cell(b, name(), prev, cur, 108, 2);
    prev = cur;
    cur = next;

    std::int64_t f = 216;
    for (int stage = 0; stage < 3; ++stage) {
        for (int i = 0; i < cells_per_stage; ++i) {
            next = cell(b, name(), prev, cur, f, 1);
            prev = cur;
            cur = next;
        }
        if (stage < 2) {
            next = cell(b, name(), prev, cur, f * 2, 2);
            prev = cur;
            cur = next;
            f *= 2;
        }
    }

    LayerId gap = b.globalPool("avgpool", cur);
    b.fc("fc", gap, 1000);
    return b.finish();
}

} // namespace gemini::dnn::zoo
