/**
 * @file
 * Model zoo: the DNN workloads evaluated in the paper (Sec. VI-A3) plus
 * small synthetic graphs used by tests and examples, and the GraphBuilder
 * convenience API for constructing custom models.
 */

#ifndef GEMINI_DNN_ZOO_HH
#define GEMINI_DNN_ZOO_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/dnn/graph.hh"

namespace gemini::dnn {

/**
 * Incremental DAG builder with automatic shape inference. Producer ids are
 * LayerIds; pass GraphBuilder::kInput (or simply omit inputs where an
 * overload allows) to read the external network input.
 */
class GraphBuilder
{
  public:
    /** Pseudo-id denoting the external network input. */
    static constexpr LayerId kInput = -1;

    GraphBuilder(std::string name, std::int64_t c, std::int64_t h,
                 std::int64_t w);

    /** Ofmap shape of a producer (kInput gives the external input shape). */
    void shapeOf(LayerId id, std::int64_t &c, std::int64_t &h,
                 std::int64_t &w) const;

    /**
     * (Grouped) convolution with fused BN/activation.
     * Output spatial dims are inferred with floor arithmetic.
     */
    LayerId conv(const std::string &name, LayerId in, std::int64_t k,
                 std::int64_t kernel_h, std::int64_t kernel_w,
                 std::int64_t stride, std::int64_t pad_h, std::int64_t pad_w,
                 std::int64_t groups = 1);

    /** Square-kernel convolution with symmetric padding. */
    LayerId conv(const std::string &name, LayerId in, std::int64_t k,
                 std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                 std::int64_t groups = 1);

    /** Depthwise convolution (groups == channels). */
    LayerId depthwise(const std::string &name, LayerId in,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t pad);

    /** Pointwise (1x1) convolution. */
    LayerId pointwise(const std::string &name, LayerId in, std::int64_t k);

    /**
     * Fully connected layer applied per spatial position (1x1 GEMM);
     * with an (c,1,1) input this is the classic classifier FC, with a
     * (c,L,1) input it is a per-token projection.
     */
    LayerId fc(const std::string &name, LayerId in, std::int64_t k);

    /** Max/avg pooling (cost model does not distinguish the two). */
    LayerId pool(const std::string &name, LayerId in, std::int64_t kernel,
                 std::int64_t stride, std::int64_t pad);

    /** Global pooling to 1x1. */
    LayerId globalPool(const std::string &name, LayerId in);

    /** Nearest-neighbour integer upscale (darknet-style upsample). */
    LayerId upsample(const std::string &name, LayerId in,
                     std::int64_t scale);

    /** Elementwise combination (residual add). */
    LayerId eltwise(const std::string &name,
                    std::initializer_list<LayerId> ins);

    /** Channel-wise concatenation. */
    LayerId concat(const std::string &name,
                   std::initializer_list<LayerId> ins);
    LayerId concat(const std::string &name, const std::vector<LayerId> &ins);

    /**
     * Batched activation x activation GEMM.
     * With transpose_b == true this is the attention-score product
     * (A=(heads*M)xL tokens, B=(heads*M)xN tokens, out=(heads*N)xL);
     * otherwise the context product (B=(heads*N)xM, out=(heads*N)xL).
     */
    LayerId matmul(const std::string &name, LayerId a, LayerId b,
                   std::int64_t heads, bool transpose_b);

    /** Row-wise softmax over within-head columns. */
    LayerId softmax(const std::string &name, LayerId in, std::int64_t heads);

    /** Per-token layer normalization. */
    LayerId layerNorm(const std::string &name, LayerId in);

    /** Finalize and return the graph (builder becomes unusable). */
    Graph finish();

  private:
    Graph graph_;
};

namespace zoo {

// ---- Paper workloads (Sec. VI-A3) ----

/** ResNet-50, ImageNet 224x224 (He et al.). */
Graph resnet50();

/** ResNeXt-50 32x4d, ImageNet 224x224 (Xie et al.). */
Graph resnext50();

/** GoogLeNet / Inception-v1, ImageNet 224x224 (appears in Fig. 8). */
Graph googlenet();

/** Inception-ResNet-v1, 299x299 input (Szegedy et al.). */
Graph inceptionResnetV1();

/**
 * PNASNet-5 (Liu et al.): stem + stacked discovered cells with separable
 * convs and pooling branches. `cells_per_stage` scales the three normal
 * stages (the published Large model uses 3-4; the default 2 keeps bench
 * runtimes reasonable while preserving the cell structure — see DESIGN.md).
 */
Graph pnasnet(int cells_per_stage = 2);

/** Transformer base encoder (Vaswani et al.): d=512, 8 heads, 6 layers. */
Graph transformerBase(std::int64_t seq_len = 512);

/** Transformer big encoder: d=1024, 16 heads, 6 layers ("TF-Large"). */
Graph transformerLarge(std::int64_t seq_len = 512);

/**
 * GPT-2-medium-class transformer (Radford et al.): d=1024, 16 heads,
 * 24 blocks, 4d FFN — 290 layers. The paper-scale stress workload of the
 * delta-evaluation benchmarks (100+-layer groups on the 256-core grid).
 */
Graph gpt2Medium(std::int64_t seq_len = 256);

// ---- Additional workloads (not in the paper's suite) ----

/** VGG-16: weight-heavy sequential CNN (weight-residency stressor). */
Graph vgg16();

/** MobileNetV2: inverted residuals (depthwise-utilization stressor). */
Graph mobilenetV2();

/**
 * YOLOv3-tiny backbone + two detection heads (Redmon & Farhadi): a
 * darknet-style detection workload — strided max-pool trunk, a 2x
 * upsampled feature-pyramid branch and a cross-scale concat — widening
 * the suite beyond classification nets. `num_classes` sets the head
 * width (k = 3 * (5 + classes); COCO's 80 by default).
 */
Graph yolov3Tiny(int num_classes = 80);

// ---- Small synthetic graphs for tests and examples ----

/** Straight chain of 3x3 convolutions on a 32x32 input. */
Graph tinyConvChain(int depth = 4);

/** One residual block with a projection shortcut. */
Graph tinyResidual();

/** One inception-style module with four branches and a concat. */
Graph tinyInception();

/** A single attention block (QKV + scores + softmax + context + FFN). */
Graph tinyTransformer(std::int64_t seq_len = 64, std::int64_t d_model = 64,
                      std::int64_t heads = 4, int blocks = 1);

// ---- Registry ----

/** Names accepted by byName(). */
std::vector<std::string> available();

/** Look up a model by name ("resnet50", "transformer", ...). */
Graph byName(const std::string &name);

} // namespace zoo

} // namespace gemini::dnn

#endif // GEMINI_DNN_ZOO_HH
