#include "src/dnn/zoo.hh"

#include "src/common/logging.hh"

namespace gemini::dnn {

GraphBuilder::GraphBuilder(std::string name, std::int64_t c, std::int64_t h,
                           std::int64_t w)
    : graph_(std::move(name), c, h, w)
{
}

void
GraphBuilder::shapeOf(LayerId id, std::int64_t &c, std::int64_t &h,
                      std::int64_t &w) const
{
    graph_.producerShape(id, c, h, w);
}

LayerId
GraphBuilder::conv(const std::string &name, LayerId in, std::int64_t k,
                   std::int64_t kernel_h, std::int64_t kernel_w,
                   std::int64_t stride, std::int64_t pad_h, std::int64_t pad_w,
                   std::int64_t groups)
{
    std::int64_t c, ih, iw;
    shapeOf(in, c, ih, iw);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Conv;
    if (in != kInput)
        l.inputs = {in};
    l.c = c;
    l.ih = ih;
    l.iw = iw;
    l.k = k;
    l.r = kernel_h;
    l.s = kernel_w;
    l.strideH = l.strideW = stride;
    l.padH = pad_h;
    l.padW = pad_w;
    l.groups = groups;
    l.h = (ih + 2 * pad_h - kernel_h) / stride + 1;
    l.w = (iw + 2 * pad_w - kernel_w) / stride + 1;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::conv(const std::string &name, LayerId in, std::int64_t k,
                   std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                   std::int64_t groups)
{
    return conv(name, in, k, kernel, kernel, stride, pad, pad, groups);
}

LayerId
GraphBuilder::depthwise(const std::string &name, LayerId in,
                        std::int64_t kernel, std::int64_t stride,
                        std::int64_t pad)
{
    std::int64_t c, ih, iw;
    shapeOf(in, c, ih, iw);
    return conv(name, in, c, kernel, stride, pad, c);
}

LayerId
GraphBuilder::pointwise(const std::string &name, LayerId in, std::int64_t k)
{
    return conv(name, in, k, 1, 1, 0);
}

LayerId
GraphBuilder::fc(const std::string &name, LayerId in, std::int64_t k)
{
    std::int64_t c, ih, iw;
    shapeOf(in, c, ih, iw);
    Layer l;
    l.name = name;
    l.kind = LayerKind::FC;
    if (in != kInput)
        l.inputs = {in};
    l.c = c;
    l.ih = ih;
    l.iw = iw;
    l.k = k;
    l.h = ih;
    l.w = iw;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::pool(const std::string &name, LayerId in, std::int64_t kernel,
                   std::int64_t stride, std::int64_t pad)
{
    std::int64_t c, ih, iw;
    shapeOf(in, c, ih, iw);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Pool;
    if (in != kInput)
        l.inputs = {in};
    l.c = c;
    l.ih = ih;
    l.iw = iw;
    l.k = c;
    l.r = l.s = kernel;
    l.strideH = l.strideW = stride;
    l.padH = l.padW = pad;
    l.h = (ih + 2 * pad - kernel) / stride + 1;
    l.w = (iw + 2 * pad - kernel) / stride + 1;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::globalPool(const std::string &name, LayerId in)
{
    std::int64_t c, ih, iw;
    shapeOf(in, c, ih, iw);
    GEMINI_ASSERT(ih == iw, "globalPool expects a square fmap in ",
                  graph_.name());
    return pool(name, in, ih, ih, 0);
}

LayerId
GraphBuilder::upsample(const std::string &name, LayerId in,
                       std::int64_t scale)
{
    GEMINI_ASSERT(scale >= 1, "upsample scale must be >= 1");
    std::int64_t c, ih, iw;
    shapeOf(in, c, ih, iw);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Upsample;
    if (in != kInput)
        l.inputs = {in};
    l.c = c;
    l.ih = ih;
    l.iw = iw;
    l.k = c;
    l.strideH = l.strideW = scale;
    l.h = ih * scale;
    l.w = iw * scale;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::eltwise(const std::string &name,
                      std::initializer_list<LayerId> ins)
{
    GEMINI_ASSERT(ins.size() >= 2, "eltwise needs >=2 inputs");
    std::int64_t c, h, w;
    shapeOf(*ins.begin(), c, h, w);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Eltwise;
    l.inputs.assign(ins.begin(), ins.end());
    l.c = c;
    l.ih = h;
    l.iw = w;
    l.k = c;
    l.h = h;
    l.w = w;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::concat(const std::string &name,
                     std::initializer_list<LayerId> ins)
{
    return concat(name, std::vector<LayerId>(ins));
}

LayerId
GraphBuilder::concat(const std::string &name, const std::vector<LayerId> &ins)
{
    GEMINI_ASSERT(ins.size() >= 2, "concat needs >=2 inputs");
    std::int64_t c_total = 0, h = 0, w = 0;
    for (std::size_t i = 0; i < ins.size(); ++i) {
        std::int64_t c, hh, ww;
        shapeOf(ins[i], c, hh, ww);
        c_total += c;
        if (i == 0) {
            h = hh;
            w = ww;
        }
    }
    Layer l;
    l.name = name;
    l.kind = LayerKind::Concat;
    l.inputs = ins;
    l.c = c_total;
    l.ih = h;
    l.iw = w;
    l.k = c_total;
    l.h = h;
    l.w = w;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::matmul(const std::string &name, LayerId a, LayerId b,
                     std::int64_t heads, bool transpose_b)
{
    std::int64_t ca, ha, wa, cb, hb, wb;
    shapeOf(a, ca, ha, wa);
    shapeOf(b, cb, hb, wb);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Matmul;
    l.inputs = {a, b};
    l.heads = heads;
    l.transposeB = transpose_b;
    l.c = ca;
    l.ih = ha;
    l.iw = 1;
    // Scores: out columns per head come from B's token rows; context:
    // out channels are B's channels.
    l.k = transpose_b ? heads * hb : cb;
    l.h = ha;
    l.w = 1;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::softmax(const std::string &name, LayerId in, std::int64_t heads)
{
    std::int64_t c, h, w;
    shapeOf(in, c, h, w);
    Layer l;
    l.name = name;
    l.kind = LayerKind::Softmax;
    l.inputs = {in};
    l.heads = heads;
    l.c = c;
    l.ih = h;
    l.iw = w;
    l.k = c;
    l.h = h;
    l.w = w;
    return graph_.add(std::move(l));
}

LayerId
GraphBuilder::layerNorm(const std::string &name, LayerId in)
{
    std::int64_t c, h, w;
    shapeOf(in, c, h, w);
    Layer l;
    l.name = name;
    l.kind = LayerKind::LayerNorm;
    l.inputs = {in};
    l.c = c;
    l.ih = h;
    l.iw = w;
    l.k = c;
    l.h = h;
    l.w = w;
    return graph_.add(std::move(l));
}

Graph
GraphBuilder::finish()
{
    graph_.finalize();
    return std::move(graph_);
}

namespace zoo {

std::vector<std::string>
available()
{
    return {"resnet50", "resnext50", "googlenet", "inception_resnet_v1",
            "pnasnet", "transformer", "transformer_large", "gpt2_medium",
            "vgg16", "mobilenet_v2", "yolov3_tiny", "tiny_conv",
            "tiny_residual", "tiny_inception", "tiny_transformer"};
}

Graph
byName(const std::string &name)
{
    if (name == "resnet50")
        return resnet50();
    if (name == "resnext50")
        return resnext50();
    if (name == "googlenet")
        return googlenet();
    if (name == "inception_resnet_v1")
        return inceptionResnetV1();
    if (name == "pnasnet")
        return pnasnet();
    if (name == "transformer")
        return transformerBase();
    if (name == "transformer_large")
        return transformerLarge();
    if (name == "gpt2_medium")
        return gpt2Medium();
    if (name == "vgg16")
        return vgg16();
    if (name == "mobilenet_v2")
        return mobilenetV2();
    if (name == "yolov3_tiny")
        return yolov3Tiny();
    if (name == "tiny_conv")
        return tinyConvChain();
    if (name == "tiny_residual")
        return tinyResidual();
    if (name == "tiny_inception")
        return tinyInception();
    if (name == "tiny_transformer")
        return tinyTransformer();
    GEMINI_FATAL("unknown model name: ", name);
}

} // namespace zoo

} // namespace gemini::dnn
