/**
 * @file
 * GoogLeNet (Inception-v1) and Inception-ResNet-v1 builders. These are the
 * "intricate dependency" workloads of the paper: multi-branch modules with
 * concat joins (GoogLeNet) plus residual adds (Inception-ResNet).
 */

#include <string>

#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

namespace {

/** Classic GoogLeNet inception module: 1x1 / 3x3 / 5x5 / pool-proj. */
LayerId
inceptionV1(GraphBuilder &b, const std::string &p, LayerId in,
            std::int64_t c1, std::int64_t c3r, std::int64_t c3,
            std::int64_t c5r, std::int64_t c5, std::int64_t cp)
{
    LayerId b1 = b.conv(p + ".1x1", in, c1, 1, 1, 0);
    LayerId b2 = b.conv(p + ".3x3r", in, c3r, 1, 1, 0);
    b2 = b.conv(p + ".3x3", b2, c3, 3, 1, 1);
    LayerId b3 = b.conv(p + ".5x5r", in, c5r, 1, 1, 0);
    b3 = b.conv(p + ".5x5", b3, c5, 5, 1, 2);
    LayerId b4 = b.pool(p + ".pool", in, 3, 1, 1);
    b4 = b.conv(p + ".poolproj", b4, cp, 1, 1, 0);
    return b.concat(p + ".cat", {b1, b2, b3, b4});
}

/** Inception-ResNet-A block (35x35 grid, 256 channels in v1). */
LayerId
iresA(GraphBuilder &b, const std::string &p, LayerId in)
{
    LayerId b1 = b.conv(p + ".b1", in, 32, 1, 1, 0);
    LayerId b2 = b.conv(p + ".b2a", in, 32, 1, 1, 0);
    b2 = b.conv(p + ".b2b", b2, 32, 3, 1, 1);
    LayerId b3 = b.conv(p + ".b3a", in, 32, 1, 1, 0);
    b3 = b.conv(p + ".b3b", b3, 32, 3, 1, 1);
    b3 = b.conv(p + ".b3c", b3, 32, 3, 1, 1);
    LayerId cat = b.concat(p + ".cat", {b1, b2, b3});
    LayerId up = b.conv(p + ".up", cat, 256, 1, 1, 0);
    return b.eltwise(p + ".add", {in, up});
}

/** Inception-ResNet-B block (17x17 grid, 896 channels in v1). */
LayerId
iresB(GraphBuilder &b, const std::string &p, LayerId in)
{
    LayerId b1 = b.conv(p + ".b1", in, 128, 1, 1, 0);
    LayerId b2 = b.conv(p + ".b2a", in, 128, 1, 1, 0);
    b2 = b.conv(p + ".b2b", b2, 128, 1, 7, 1, 0, 3);
    b2 = b.conv(p + ".b2c", b2, 128, 7, 1, 1, 3, 0);
    LayerId cat = b.concat(p + ".cat", {b1, b2});
    LayerId up = b.conv(p + ".up", cat, 896, 1, 1, 0);
    return b.eltwise(p + ".add", {in, up});
}

/** Inception-ResNet-C block (8x8 grid, 1792 channels in v1). */
LayerId
iresC(GraphBuilder &b, const std::string &p, LayerId in)
{
    LayerId b1 = b.conv(p + ".b1", in, 192, 1, 1, 0);
    LayerId b2 = b.conv(p + ".b2a", in, 192, 1, 1, 0);
    b2 = b.conv(p + ".b2b", b2, 192, 1, 3, 1, 0, 1);
    b2 = b.conv(p + ".b2c", b2, 192, 3, 1, 1, 1, 0);
    LayerId cat = b.concat(p + ".cat", {b1, b2});
    LayerId up = b.conv(p + ".up", cat, 1792, 1, 1, 0);
    return b.eltwise(p + ".add", {in, up});
}

} // namespace

Graph
googlenet()
{
    GraphBuilder b("googlenet", 3, 224, 224);
    LayerId x = b.conv("conv1", GraphBuilder::kInput, 64, 7, 2, 3);
    x = b.pool("pool1", x, 3, 2, 1);
    x = b.conv("conv2r", x, 64, 1, 1, 0);
    x = b.conv("conv2", x, 192, 3, 1, 1);
    x = b.pool("pool2", x, 3, 2, 1);
    x = inceptionV1(b, "3a", x, 64, 96, 128, 16, 32, 32);
    x = inceptionV1(b, "3b", x, 128, 128, 192, 32, 96, 64);
    x = b.pool("pool3", x, 3, 2, 1);
    x = inceptionV1(b, "4a", x, 192, 96, 208, 16, 48, 64);
    x = inceptionV1(b, "4b", x, 160, 112, 224, 24, 64, 64);
    x = inceptionV1(b, "4c", x, 128, 128, 256, 24, 64, 64);
    x = inceptionV1(b, "4d", x, 112, 144, 288, 32, 64, 64);
    x = inceptionV1(b, "4e", x, 256, 160, 320, 32, 128, 128);
    x = b.pool("pool4", x, 3, 2, 1);
    x = inceptionV1(b, "5a", x, 256, 160, 320, 32, 128, 128);
    x = inceptionV1(b, "5b", x, 384, 192, 384, 48, 128, 128);
    x = b.globalPool("avgpool", x);
    b.fc("fc", x, 1000);
    return b.finish();
}

Graph
inceptionResnetV1()
{
    GraphBuilder b("inception_resnet_v1", 3, 299, 299);
    // Stem.
    LayerId x = b.conv("stem.c1", GraphBuilder::kInput, 32, 3, 2, 0);
    x = b.conv("stem.c2", x, 32, 3, 1, 0);
    x = b.conv("stem.c3", x, 64, 3, 1, 1);
    x = b.pool("stem.pool", x, 3, 2, 0);
    x = b.conv("stem.c4", x, 80, 1, 1, 0);
    x = b.conv("stem.c5", x, 192, 3, 1, 0);
    x = b.conv("stem.c6", x, 256, 3, 2, 0);

    for (int i = 0; i < 5; ++i)
        x = iresA(b, "a" + std::to_string(i), x);

    // Reduction-A to a 17x17 grid, 896 channels.
    LayerId r1 = b.conv("redA.b1", x, 384, 3, 2, 0);
    LayerId r2 = b.conv("redA.b2a", x, 192, 1, 1, 0);
    r2 = b.conv("redA.b2b", r2, 192, 3, 1, 1);
    r2 = b.conv("redA.b2c", r2, 256, 3, 2, 0);
    LayerId r3 = b.pool("redA.pool", x, 3, 2, 0);
    x = b.concat("redA.cat", {r1, r2, r3});

    for (int i = 0; i < 10; ++i)
        x = iresB(b, "b" + std::to_string(i), x);

    // Reduction-B to an 8x8 grid, 1792 channels.
    LayerId s1 = b.conv("redB.b1a", x, 256, 1, 1, 0);
    s1 = b.conv("redB.b1b", s1, 384, 3, 2, 0);
    LayerId s2 = b.conv("redB.b2a", x, 256, 1, 1, 0);
    s2 = b.conv("redB.b2b", s2, 256, 3, 2, 0);
    LayerId s3 = b.conv("redB.b3a", x, 256, 1, 1, 0);
    s3 = b.conv("redB.b3b", s3, 256, 3, 1, 1);
    s3 = b.conv("redB.b3c", s3, 256, 3, 2, 0);
    LayerId s4 = b.pool("redB.pool", x, 3, 2, 0);
    x = b.concat("redB.cat", {s1, s2, s3, s4});

    for (int i = 0; i < 5; ++i)
        x = iresC(b, "c" + std::to_string(i), x);

    x = b.globalPool("avgpool", x);
    b.fc("fc", x, 1000);
    return b.finish();
}

} // namespace gemini::dnn::zoo
