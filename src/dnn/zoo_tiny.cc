/**
 * @file
 * Small synthetic graphs for unit tests, property tests and the quickstart
 * example. They exercise every structural feature the large models use
 * (chains, residuals, multi-branch concat) at sizes that map onto a handful
 * of cores in microseconds.
 */

#include <string>

#include "src/common/logging.hh"
#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

Graph
tinyConvChain(int depth)
{
    GEMINI_ASSERT(depth >= 1, "tinyConvChain needs depth >= 1");
    GraphBuilder b("tiny_conv", 16, 32, 32);
    LayerId x = GraphBuilder::kInput;
    for (int i = 0; i < depth; ++i)
        x = b.conv("conv" + std::to_string(i), x, 32, 3, 1, 1);
    b.globalPool("gap", x);
    return b.finish();
}

Graph
tinyResidual()
{
    GraphBuilder b("tiny_residual", 16, 32, 32);
    LayerId stem = b.conv("stem", GraphBuilder::kInput, 32, 3, 1, 1);
    LayerId x = b.conv("conv1", stem, 32, 3, 1, 1);
    x = b.conv("conv2", x, 64, 3, 2, 1);
    LayerId proj = b.conv("proj", stem, 64, 1, 2, 0);
    LayerId add = b.eltwise("add", {x, proj});
    b.conv("head", add, 64, 3, 1, 1);
    return b.finish();
}

Graph
tinyInception()
{
    GraphBuilder b("tiny_inception", 16, 28, 28);
    LayerId stem = b.conv("stem", GraphBuilder::kInput, 32, 3, 1, 1);
    LayerId b1 = b.conv("b1", stem, 16, 1, 1, 0);
    LayerId b2 = b.conv("b2a", stem, 8, 1, 1, 0);
    b2 = b.conv("b2b", b2, 16, 3, 1, 1);
    LayerId b3 = b.pool("b3a", stem, 3, 1, 1);
    b3 = b.conv("b3b", b3, 16, 1, 1, 0);
    LayerId cat = b.concat("cat", {b1, b2, b3});
    b.conv("head", cat, 48, 3, 1, 1);
    return b.finish();
}

} // namespace gemini::dnn::zoo
