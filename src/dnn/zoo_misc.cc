/**
 * @file
 * Additional workloads beyond the paper's five: VGG-16 (the classic
 * weight-heavy sequential CNN — a stress test for weight residency and
 * DRAM bandwidth) and MobileNetV2 (inverted residuals — a depthwise-heavy
 * regime where the PE-array utilization model matters). Useful extra
 * points for architecture DSE studies.
 */

#include <string>

#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

namespace {

/** MobileNetV2 inverted residual block. */
LayerId
invertedResidual(GraphBuilder &b, const std::string &p, LayerId in,
                 std::int64_t in_ch, std::int64_t out_ch,
                 std::int64_t stride, std::int64_t expand)
{
    LayerId x = in;
    if (expand != 1)
        x = b.pointwise(p + ".expand", x, in_ch * expand);
    x = b.depthwise(p + ".dw", x, 3, stride, 1);
    x = b.pointwise(p + ".project", x, out_ch);
    if (stride == 1 && in_ch == out_ch)
        x = b.eltwise(p + ".add", {in, x});
    return x;
}

} // namespace

Graph
vgg16()
{
    GraphBuilder b("vgg16", 3, 224, 224);
    LayerId x = GraphBuilder::kInput;
    const struct
    {
        int convs;
        std::int64_t ch;
    } stages[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
    int idx = 1;
    for (const auto &st : stages) {
        for (int i = 0; i < st.convs; ++i)
            x = b.conv("conv" + std::to_string(idx++), x, st.ch, 3, 1, 1);
        x = b.pool("pool" + std::to_string(idx - 1), x, 2, 2, 0);
    }
    // fc6 consumes the flattened 7x7x512 map — expressed exactly as a
    // 7x7 valid convolution to (4096,1,1); it alone holds ~103M params.
    x = b.conv("fc6", x, 4096, 7, 1, 0);
    x = b.fc("fc7", x, 4096);
    b.fc("fc8", x, 1000);
    return b.finish();
}

Graph
mobilenetV2()
{
    GraphBuilder b("mobilenet_v2", 3, 224, 224);
    LayerId x = b.conv("stem", GraphBuilder::kInput, 32, 3, 2, 1);
    // (expansion, out channels, repeats, first stride) per the paper.
    const struct
    {
        std::int64_t t, c;
        int n;
        std::int64_t s;
    } cfg[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
               {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
               {6, 320, 1, 1}};
    std::int64_t in_ch = 32;
    int idx = 0;
    for (const auto &st : cfg) {
        for (int i = 0; i < st.n; ++i) {
            const std::int64_t stride = (i == 0) ? st.s : 1;
            x = invertedResidual(b, "ir" + std::to_string(idx++), x, in_ch,
                                 st.c, stride, st.t);
            in_ch = st.c;
        }
    }
    x = b.pointwise("head", x, 1280);
    x = b.globalPool("gap", x);
    b.fc("fc", x, 1000);
    return b.finish();
}

} // namespace gemini::dnn::zoo
