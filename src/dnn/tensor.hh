/**
 * @file
 * Tensor-region primitives. A Region is an axis-aligned box in a layer's
 * ofmap coordinate space (channels x height x width); the batch dimension is
 * handled separately by the mapping layer because it always maps 1:1 through
 * every operator.
 */

#ifndef GEMINI_DNN_TENSOR_HH
#define GEMINI_DNN_TENSOR_HH

#include <algorithm>
#include <cstdint>
#include <ostream>

namespace gemini::dnn {

/**
 * Half-open box [c0,c1) x [h0,h1) x [w0,w1) in feature-map coordinates.
 */
struct Region
{
    std::int64_t c0 = 0, c1 = 0;
    std::int64_t h0 = 0, h1 = 0;
    std::int64_t w0 = 0, w1 = 0;

    /** Full region of a (c, h, w) feature map. */
    static Region
    full(std::int64_t c, std::int64_t h, std::int64_t w)
    {
        return {0, c, 0, h, 0, w};
    }

    std::int64_t channels() const { return c1 - c0; }
    std::int64_t height() const { return h1 - h0; }
    std::int64_t width() const { return w1 - w0; }

    /** Number of elements (per batch sample). */
    std::int64_t
    volume() const
    {
        if (empty())
            return 0;
        return channels() * height() * width();
    }

    bool
    empty() const
    {
        return c1 <= c0 || h1 <= h0 || w1 <= w0;
    }

    /** Intersection with another region (possibly empty). */
    Region
    intersect(const Region &o) const
    {
        return {std::max(c0, o.c0), std::min(c1, o.c1),
                std::max(h0, o.h0), std::min(h1, o.h1),
                std::max(w0, o.w0), std::min(w1, o.w1)};
    }

    /** Clamp all coordinates into the full map of dims (c, h, w). */
    Region
    clampTo(std::int64_t c, std::int64_t h, std::int64_t w) const
    {
        return intersect(full(c, h, w));
    }

    bool
    operator==(const Region &o) const
    {
        return c0 == o.c0 && c1 == o.c1 && h0 == o.h0 && h1 == o.h1 &&
               w0 == o.w0 && w1 == o.w1;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Region &r)
{
    return os << "c[" << r.c0 << "," << r.c1 << ")h[" << r.h0 << "," << r.h1
              << ")w[" << r.w0 << "," << r.w1 << ")";
}

} // namespace gemini::dnn

#endif // GEMINI_DNN_TENSOR_HH
