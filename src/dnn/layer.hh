/**
 * @file
 * The Layer node of a DNN DAG, together with the dependency-projection math
 * that the LP SPM analyzer relies on: given an output region of this layer,
 * which region of each input feature map is required to compute it?
 */

#ifndef GEMINI_DNN_LAYER_HH
#define GEMINI_DNN_LAYER_HH

#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/dnn/tensor.hh"

namespace gemini::dnn {

/**
 * Operator kinds supported by the cost model. Batch-norm / bias / activation
 * are assumed fused into the producing Conv/FC (executed on the vector unit,
 * as in the paper's core template) and are accounted as vector ops.
 */
enum class LayerKind
{
    Conv,      ///< (grouped) convolution; groups==c makes it depthwise
    FC,        ///< fully connected / 1x1 GEMM over tokens or a flat vector
    Pool,      ///< max/avg pooling (no weights, vector unit)
    Eltwise,   ///< elementwise combine of >=2 same-shape inputs
    Concat,    ///< channel-wise concatenation (pure data movement)
    Matmul,    ///< activation x activation GEMM (attention scores / context)
    Softmax,   ///< row-wise softmax over the within-head column dim
    LayerNorm, ///< per-token normalization over channels
    Upsample,  ///< nearest-neighbour integer upscale (darknet "upsample";
               ///< strideH/strideW hold the scale: h = ih * strideH)
};

/** Human-readable kind name (for reports and graph dumps). */
const char *layerKindName(LayerKind kind);

/**
 * One node of the DNN DAG.
 *
 * Geometry convention: the ofmap of every layer is a (k x h x w) map per
 * batch sample; the ifmap is (c x ih x iw). GEMM-shaped operators are
 * expressed in the same coordinates (tokens on the h axis, features on the
 * channel axis), which is exactly how the paper's encoding treats them: the
 * Partition attribute always splits the 4-D output cube (H, W, B, K).
 */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;

    /** Producer layers; empty means this layer reads the DNN input. */
    std::vector<LayerId> inputs;

    // Ofmap geometry (per sample).
    std::int64_t k = 0; ///< output channels
    std::int64_t h = 0; ///< output height (tokens for GEMM-shaped layers)
    std::int64_t w = 0; ///< output width

    // Ifmap geometry (per sample). For multi-input layers, c is the total
    // channel count across inputs (Concat/Eltwise/Matmul document their own
    // interpretation below).
    std::int64_t c = 0;  ///< input channels
    std::int64_t ih = 0; ///< input height
    std::int64_t iw = 0; ///< input width

    // Convolution / pooling window.
    std::int64_t r = 1, s = 1;           ///< kernel height/width
    std::int64_t strideH = 1, strideW = 1;
    std::int64_t padH = 0, padW = 0;

    /** Channel groups for grouped/depthwise conv (divides both c and k). */
    std::int64_t groups = 1;

    /**
     * Attention heads for Matmul/Softmax layers. For Matmul the output
     * channel axis is laid out head-major: k = heads * colsPerHead.
     */
    std::int64_t heads = 1;

    /**
     * Matmul operand-B orientation. With transposeB (attention scores
     * Q @ K^T), operand B is stored like operand A — (heads*M) channels by
     * N token rows — and the output columns index B's rows. Without it
     * (attention context A @ V), B is stored (heads*N) channels by M rows
     * and output channels map 1:1 onto B's channels. The inner dimension M
     * is always c / heads (operand A's per-head channel count).
     */
    bool transposeB = false;

    /**
     * Per-input channel widths, in input order. Required for Concat (the
     * channel offsets) and recorded by the graph builder for every
     * multi-input layer.
     */
    std::vector<std::int64_t> inputChannels;

    /** True for layers whose output leaves the DNN (classifier logits...). */
    bool isOutput = false;

    // ------------------------------------------------------------------
    // Derived quantities
    // ------------------------------------------------------------------

    /** Ofmap elements per batch sample. */
    std::int64_t ofmapVolume() const { return k * h * w; }

    /** Ifmap elements per batch sample (sum over all inputs). */
    std::int64_t ifmapVolume() const;

    /** Weight parameter count (0 for weight-less kinds). */
    std::int64_t weightCount() const;

    /** Weight footprint in bytes (8-bit weights + 32-bit bias per k). */
    Bytes weightBytes() const;

    /** MAC operations per batch sample (0 for vector-only kinds). */
    OpCount macsPerSample() const;

    /** Vector-unit operations per batch sample (pool/eltwise/act/norm). */
    OpCount vectorOpsPerSample() const;

    /** True if this layer kind carries trainable weights. */
    bool hasWeights() const;

    /** Matmul inner dimension M (operand A's per-head channels). */
    std::int64_t transposedInner() const { return c / heads; }

    /** Matmul operand-B token-row count. */
    std::int64_t
    ih2() const
    {
        return transposeB ? k / heads : c / heads;
    }

    /**
     * Project an output region onto input `input_idx`, returning the region
     * of that producer's ofmap that must be available. Conv/Pool expand by
     * the receptive field; Concat offsets channels; Matmul/Softmax follow
     * the head-major layout documented in DESIGN.md.
     */
    Region requiredInput(std::size_t input_idx, const Region &out) const;

    /**
     * Sanity-check internal consistency (dims positive, groups divide
     * channels, window arithmetic matches ih/iw...). Returns an error
     * message, or an empty string when valid.
     */
    std::string checkValid() const;
};

} // namespace gemini::dnn

#endif // GEMINI_DNN_LAYER_HH
