#include "src/dnn/graph.hh"

#include <sstream>

#include "src/common/logging.hh"

namespace gemini::dnn {

Graph::Graph(std::string name, std::int64_t input_c, std::int64_t input_h,
             std::int64_t input_w)
    : name_(std::move(name)), inputC_(input_c), inputH_(input_h),
      inputW_(input_w)
{
    GEMINI_ASSERT(input_c > 0 && input_h > 0 && input_w > 0,
                  "graph input dims must be positive");
}

LayerId
Graph::add(Layer layer)
{
    GEMINI_ASSERT(!finalized_, "cannot add layers after finalize()");
    const LayerId id = static_cast<LayerId>(layers_.size());
    for (LayerId in : layer.inputs) {
        if (in < 0 || in >= id)
            GEMINI_FATAL("layer ", layer.name, " references invalid input ",
                         in);
    }

    // Record per-input channel widths (used by Concat projection).
    layer.inputChannels.clear();
    for (LayerId in : layer.inputs)
        layer.inputChannels.push_back(layers_[in].k);
    if (layer.inputs.empty())
        layer.inputChannels.push_back(inputC_);

    // Cross-check the declared ifmap against the producers.
    std::int64_t pc = 0, ph = 0, pw = 0;
    if (layer.inputs.empty()) {
        pc = inputC_;
        ph = inputH_;
        pw = inputW_;
    } else {
        const Layer &first = layers_[layer.inputs.front()];
        ph = first.h;
        pw = first.w;
        if (layer.kind == LayerKind::Concat) {
            for (LayerId in : layer.inputs)
                pc += layers_[in].k;
        } else {
            pc = first.k;
        }
    }
    if (layer.kind == LayerKind::Matmul) {
        // Operand A defines (c, ih); operand B's shape is validated below.
        const Layer &a = layers_[layer.inputs.at(0)];
        const Layer &b = layers_[layer.inputs.at(1)];
        if (layer.c != a.k || layer.ih != a.h)
            GEMINI_FATAL("matmul ", layer.name,
                         " operand A shape mismatch: expected c=", a.k,
                         " ih=", a.h, ", declared c=", layer.c,
                         " ih=", layer.ih);
        const std::int64_t want_b_c = layer.transposeB ? layer.c : layer.k;
        if (b.k != want_b_c || b.h != layer.ih2())
            GEMINI_FATAL("matmul ", layer.name,
                         " operand B shape mismatch: have (", b.k, ",", b.h,
                         "), want (", want_b_c, ",", layer.ih2(), ")");
    } else {
        if (layer.c != pc || layer.ih != ph || layer.iw != pw)
            GEMINI_FATAL("layer ", layer.name, " declared ifmap (", layer.c,
                         ",", layer.ih, ",", layer.iw,
                         ") does not match producers (", pc, ",", ph, ",", pw,
                         ")");
    }

    const std::string err = layer.checkValid();
    if (!err.empty())
        GEMINI_FATAL("invalid layer: ", err);

    layers_.push_back(std::move(layer));
    consumers_.emplace_back();
    for (LayerId in : layers_.back().inputs)
        consumers_[in].push_back(id);
    return id;
}

void
Graph::finalize()
{
    GEMINI_ASSERT(!finalized_, "finalize() called twice");
    GEMINI_ASSERT(!layers_.empty(), "cannot finalize an empty graph");
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (consumers_[i].empty())
            layers_[i].isOutput = true;
    }
    finalized_ = true;
}

const Layer &
Graph::layer(LayerId id) const
{
    GEMINI_ASSERT(id >= 0 && static_cast<std::size_t>(id) < layers_.size(),
                  "layer id out of range: ", id);
    return layers_[id];
}

const std::vector<LayerId> &
Graph::consumers(LayerId id) const
{
    GEMINI_ASSERT(id >= 0 && static_cast<std::size_t>(id) < layers_.size(),
                  "layer id out of range: ", id);
    return consumers_[id];
}

bool
Graph::readsExternalInput(LayerId id) const
{
    return layer(id).inputs.empty();
}

void
Graph::producerShape(LayerId id, std::int64_t &c, std::int64_t &h,
                     std::int64_t &w) const
{
    if (id < 0) {
        c = inputC_;
        h = inputH_;
        w = inputW_;
        return;
    }
    const Layer &l = layer(id);
    c = l.k;
    h = l.h;
    w = l.w;
}

OpCount
Graph::totalMacs() const
{
    OpCount total = 0;
    for (const auto &l : layers_)
        total += l.macsPerSample();
    return total;
}

Bytes
Graph::totalWeightBytes() const
{
    Bytes total = 0;
    for (const auto &l : layers_)
        total += l.weightBytes();
    return total;
}

std::string
Graph::summary() const
{
    std::ostringstream oss;
    oss << name_ << ": " << layers_.size() << " layers, input (" << inputC_
        << "," << inputH_ << "," << inputW_ << "), "
        << totalMacs() / 1.0e9 << " GMACs/sample, "
        << totalWeightBytes() / 1.0e6 << " MB weights\n";
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const Layer &l = layers_[i];
        oss << "  [" << i << "] " << layerKindName(l.kind) << " " << l.name
            << " out(" << l.k << "," << l.h << "," << l.w << ") in(" << l.c
            << "," << l.ih << "," << l.iw << ")";
        if (l.kind == LayerKind::Conv || l.kind == LayerKind::Pool) {
            oss << " k" << l.r << "x" << l.s << "s" << l.strideH;
            if (l.groups > 1)
                oss << " g" << l.groups;
        }
        if (!l.inputs.empty()) {
            oss << " <-";
            for (LayerId in : l.inputs)
                oss << " " << in;
        } else {
            oss << " <- INPUT";
        }
        if (l.isOutput)
            oss << " [OUT]";
        oss << "\n";
    }
    return oss.str();
}

} // namespace gemini::dnn
