/**
 * @file
 * Transformer encoder builders (Vaswani et al.). Attention is expressed with
 * the library's token-major GEMM layers: projections are FC-per-token,
 * scores/context are Matmul layers with head-major channel layout, and the
 * softmax/layer-norm vector ops are explicit graph nodes.
 */

#include <string>

#include "src/common/logging.hh"
#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

namespace {

/** One post-LN encoder block: MHA + FFN with residuals. */
LayerId
encoderBlock(GraphBuilder &b, const std::string &p, LayerId x,
             std::int64_t d_model, std::int64_t heads, std::int64_t d_ff)
{
    LayerId q = b.fc(p + ".q", x, d_model);
    LayerId k = b.fc(p + ".k", x, d_model);
    LayerId v = b.fc(p + ".v", x, d_model);
    LayerId scores = b.matmul(p + ".qk", q, k, heads, /*transpose_b=*/true);
    LayerId attn = b.softmax(p + ".softmax", scores, heads);
    LayerId ctx = b.matmul(p + ".av", attn, v, heads, /*transpose_b=*/false);
    LayerId proj = b.fc(p + ".proj", ctx, d_model);
    LayerId res1 = b.eltwise(p + ".add1", {x, proj});
    LayerId ln1 = b.layerNorm(p + ".ln1", res1);
    LayerId ff1 = b.fc(p + ".ff1", ln1, d_ff);
    LayerId ff2 = b.fc(p + ".ff2", ff1, d_model);
    LayerId res2 = b.eltwise(p + ".add2", {ln1, ff2});
    return b.layerNorm(p + ".ln2", res2);
}

Graph
buildEncoder(const std::string &name, std::int64_t seq_len,
             std::int64_t d_model, std::int64_t heads, std::int64_t d_ff,
             int blocks)
{
    GEMINI_ASSERT(d_model % heads == 0, "d_model must divide by heads");
    // The external input is the embedded token sequence: d_model channels
    // by seq_len "token rows" (embedding lookup itself is not a compute
    // layer in an inference accelerator cost model).
    GraphBuilder b(name, d_model, seq_len, 1);
    LayerId x = b.fc("embed_proj", GraphBuilder::kInput, d_model);
    for (int i = 0; i < blocks; ++i)
        x = encoderBlock(b, "enc" + std::to_string(i), x, d_model, heads,
                         d_ff);
    b.fc("lm_head", x, d_model);
    return b.finish();
}

} // namespace

Graph
transformerBase(std::int64_t seq_len)
{
    return buildEncoder("transformer", seq_len, 512, 8, 2048, 6);
}

Graph
transformerLarge(std::int64_t seq_len)
{
    return buildEncoder("transformer_large", seq_len, 1024, 16, 4096, 6);
}

Graph
gpt2Medium(std::int64_t seq_len)
{
    // GPT-2 medium (Radford et al.): d=1024, 16 heads, 24 blocks, 4d FFN.
    // Expressed with the encoder block structure — the cost model prices
    // dense GEMMs, so the decoder's causal masking (which only zeroes
    // half the score matrix) is the same workload shape. At 290 layers
    // this is the paper-scale stress DNN: layer groups reach 100+ layers,
    // which is exactly the regime the delta-evaluated SA path targets.
    return buildEncoder("gpt2_medium", seq_len, 1024, 16, 4096, 24);
}

Graph
tinyTransformer(std::int64_t seq_len, std::int64_t d_model,
                std::int64_t heads, int blocks)
{
    return buildEncoder("tiny_transformer", seq_len, d_model, heads,
                        4 * d_model, blocks);
}

} // namespace gemini::dnn::zoo
