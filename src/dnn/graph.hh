/**
 * @file
 * The DNN DAG: an append-only list of layers in topological order, with
 * consumer tracking, whole-network statistics and validation. This is the
 * input object of the Gemini mapping engine (the paper's "Model Parser"
 * output).
 */

#ifndef GEMINI_DNN_GRAPH_HH
#define GEMINI_DNN_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hh"
#include "src/dnn/layer.hh"

namespace gemini::dnn {

/**
 * A directed acyclic graph of layers. Layers are stored in the order they
 * were added, which is by construction a topological order (a layer may only
 * reference already-added producers).
 */
class Graph
{
  public:
    /**
     * @param name     model name for reports
     * @param input_c  external input channels
     * @param input_h  external input height
     * @param input_w  external input width
     */
    Graph(std::string name, std::int64_t input_c, std::int64_t input_h,
          std::int64_t input_w);

    /**
     * Append a layer. Its `inputs` must reference existing layer ids; an
     * empty `inputs` list means the layer reads the external DNN input.
     * Fills in `inputChannels` and cross-checks shape arithmetic against
     * the producers; calls GEMINI_FATAL on inconsistency.
     *
     * @return the id of the new layer
     */
    LayerId add(Layer layer);

    /**
     * Finish construction: mark sink layers as network outputs and run a
     * final validation sweep. Must be called once before the graph is used
     * by the mapping engine.
     */
    void finalize();

    const std::string &name() const { return name_; }
    std::int64_t inputC() const { return inputC_; }
    std::int64_t inputH() const { return inputH_; }
    std::int64_t inputW() const { return inputW_; }

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    const Layer &layer(LayerId id) const;
    const std::vector<Layer> &layers() const { return layers_; }

    /** Ids of layers that consume `id`'s ofmap. */
    const std::vector<LayerId> &consumers(LayerId id) const;

    /** True if the layer reads the external network input. */
    bool readsExternalInput(LayerId id) const;

    /** Shape of producer `id`'s ofmap, or the external input for id < 0. */
    void producerShape(LayerId id, std::int64_t &c, std::int64_t &h,
                       std::int64_t &w) const;

    /** Whole-network MACs per batch sample. */
    OpCount totalMacs() const;

    /** Whole-network weight footprint in bytes. */
    Bytes totalWeightBytes() const;

    /** One-line-per-layer human-readable description. */
    std::string summary() const;

    bool finalized() const { return finalized_; }

  private:
    std::string name_;
    std::int64_t inputC_, inputH_, inputW_;
    std::vector<Layer> layers_;
    std::vector<std::vector<LayerId>> consumers_;
    bool finalized_ = false;
};

} // namespace gemini::dnn

#endif // GEMINI_DNN_GRAPH_HH
