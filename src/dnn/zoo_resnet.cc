/**
 * @file
 * ResNet-50 and ResNeXt-50 (32x4d) graph builders. Batch-norm and ReLU are
 * fused into the producing convolutions (vector-unit post-processing, as in
 * the paper's core template), so the graphs contain Conv / Pool / Eltwise /
 * FC nodes only.
 */

#include <string>

#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

namespace {

/**
 * Standard bottleneck residual block.
 *
 * @param width   mid-block channel width
 * @param out_ch  output channels (4x planes)
 * @param stride  spatial stride applied in the 3x3 conv
 * @param groups  cardinality (1 for ResNet, 32 for ResNeXt)
 * @param project true when the shortcut needs a 1x1 projection conv
 */
LayerId
bottleneck(GraphBuilder &b, const std::string &prefix, LayerId in,
           std::int64_t width, std::int64_t out_ch, std::int64_t stride,
           std::int64_t groups, bool project)
{
    LayerId x = b.conv(prefix + ".conv1", in, width, 1, 1, 0);
    x = b.conv(prefix + ".conv2", x, width, 3, stride, 1, groups);
    x = b.conv(prefix + ".conv3", x, out_ch, 1, 1, 0);
    LayerId shortcut = in;
    if (project)
        shortcut = b.conv(prefix + ".proj", in, out_ch, 1, stride, 0);
    return b.eltwise(prefix + ".add", {x, shortcut});
}

/**
 * Build the shared ResNet-50 skeleton. ResNeXt-50 32x4d differs only in the
 * bottleneck width (2x planes instead of planes) and cardinality.
 */
Graph
buildResnet(const std::string &name, std::int64_t groups,
            std::int64_t width_factor_num, std::int64_t width_factor_den)
{
    GraphBuilder b(name, 3, 224, 224);
    LayerId x = b.conv("conv1", GraphBuilder::kInput, 64, 7, 2, 3);
    x = b.pool("maxpool", x, 3, 2, 1);

    struct Stage
    {
        std::int64_t planes;
        int blocks;
        std::int64_t stride;
    };
    const Stage stages[] = {
        {64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2}};

    int stage_idx = 2;
    for (const auto &st : stages) {
        const std::int64_t width =
            st.planes * width_factor_num / width_factor_den;
        const std::int64_t out_ch = st.planes * 4;
        for (int blk = 0; blk < st.blocks; ++blk) {
            const std::string prefix =
                "layer" + std::to_string(stage_idx - 1) + "." +
                std::to_string(blk);
            const std::int64_t stride = (blk == 0) ? st.stride : 1;
            const bool project = (blk == 0);
            x = bottleneck(b, prefix, x, width, out_ch, stride, groups,
                           project);
        }
        ++stage_idx;
    }

    x = b.globalPool("avgpool", x);
    b.fc("fc", x, 1000);
    return b.finish();
}

} // namespace

Graph
resnet50()
{
    return buildResnet("resnet50", 1, 1, 1);
}

Graph
resnext50()
{
    // 32x4d: width = planes * (4 * 32) / 64 = planes * 2, cardinality 32.
    return buildResnet("resnext50_32x4d", 32, 2, 1);
}

} // namespace gemini::dnn::zoo
