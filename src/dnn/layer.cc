#include "src/dnn/layer.hh"

#include <algorithm>
#include <sstream>

#include "src/common/logging.hh"

namespace gemini::dnn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "Conv";
      case LayerKind::FC: return "FC";
      case LayerKind::Pool: return "Pool";
      case LayerKind::Eltwise: return "Eltwise";
      case LayerKind::Concat: return "Concat";
      case LayerKind::Matmul: return "Matmul";
      case LayerKind::Softmax: return "Softmax";
      case LayerKind::LayerNorm: return "LayerNorm";
      case LayerKind::Upsample: return "Upsample";
    }
    return "?";
}

std::int64_t
Layer::ifmapVolume() const
{
    if (kind == LayerKind::Matmul) {
        // Two activation operands; see requiredInput() for the layout.
        const std::int64_t in0 = c * ih * iw;
        const std::int64_t in1 =
            (transposeB ? c : k) * ih2();
        return in0 + in1;
    }
    return c * ih * iw;
}

std::int64_t
Layer::weightCount() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::FC:
        return k * (c / groups) * r * s;
      default:
        return 0;
    }
}

Bytes
Layer::weightBytes() const
{
    if (!hasWeights())
        return 0;
    // 8-bit weights plus a 32-bit bias/BN-scale pair per output channel.
    return weightCount() + 4 * k;
}

OpCount
Layer::macsPerSample() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::FC:
        return ofmapVolume() * (c / groups) * r * s;
      case LayerKind::Matmul:
        return ofmapVolume() * transposedInner();
      default:
        return 0;
    }
}

OpCount
Layer::vectorOpsPerSample() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::FC:
      case LayerKind::Matmul:
        // Fused bias / BN / activation on the vector unit.
        return ofmapVolume();
      case LayerKind::Pool:
        return ofmapVolume() * r * s;
      case LayerKind::Eltwise:
        return ofmapVolume() *
               static_cast<OpCount>(std::max<std::size_t>(inputs.size(), 2));
      case LayerKind::Concat:
        return ofmapVolume();
      case LayerKind::Softmax:
      case LayerKind::LayerNorm:
        // exp/max/sum/normalize passes.
        return 4 * ofmapVolume();
      case LayerKind::Upsample:
        // One replicated write per output element.
        return ofmapVolume();
    }
    return 0;
}

bool
Layer::hasWeights() const
{
    return kind == LayerKind::Conv || kind == LayerKind::FC;
}

namespace {

/** Expand a channel range to the enclosing whole-group boundaries. */
void
expandToGroups(std::int64_t lo, std::int64_t hi, std::int64_t per_group,
               std::int64_t &out_lo, std::int64_t &out_hi)
{
    out_lo = (lo / per_group) * per_group;
    out_hi = ((hi + per_group - 1) / per_group) * per_group;
}

} // namespace

Region
Layer::requiredInput(std::size_t input_idx, const Region &out) const
{
    GEMINI_ASSERT(input_idx < std::max<std::size_t>(inputs.size(), 1),
                  "requiredInput index out of range for layer ", name);
    Region in;
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::FC:
      case LayerKind::Pool: {
        // Receptive-field projection with clamping into the ifmap.
        in.h0 = out.h0 * strideH - padH;
        in.h1 = (out.h1 - 1) * strideH - padH + r;
        in.w0 = out.w0 * strideW - padW;
        in.w1 = (out.w1 - 1) * strideW - padW + s;
        if (kind == LayerKind::Pool) {
            // Channels map 1:1 through pooling.
            in.c0 = out.c0;
            in.c1 = out.c1;
        } else if (groups == 1) {
            in.c0 = 0;
            in.c1 = c;
        } else {
            // Grouped conv: k-range selects groups; each group consumes its
            // own c/groups channel slice.
            const std::int64_t k_per_g = k / groups;
            const std::int64_t c_per_g = c / groups;
            const std::int64_t g0 = out.c0 / k_per_g;
            const std::int64_t g1 = (out.c1 + k_per_g - 1) / k_per_g;
            in.c0 = g0 * c_per_g;
            in.c1 = g1 * c_per_g;
        }
        return in.clampTo(c, ih, iw);
      }
      case LayerKind::Eltwise:
        // All operands are consumed point-for-point.
        return out;
      case LayerKind::Concat: {
        // Input input_idx owns channel slice [off, off + width).
        std::int64_t off = 0;
        for (std::size_t i = 0; i < input_idx; ++i)
            off += inputChannels[i];
        const std::int64_t width = inputChannels[input_idx];
        Region r_in = out;
        r_in.c0 = std::max<std::int64_t>(out.c0 - off, 0);
        r_in.c1 = std::min<std::int64_t>(out.c1 - off, width);
        if (r_in.c1 <= r_in.c0)
            return {0, 0, 0, 0, 0, 0};
        return r_in;
      }
      case LayerKind::Matmul: {
        const std::int64_t n_per_head = k / heads;
        std::int64_t head_c0, head_c1;
        expandToGroups(out.c0, out.c1, n_per_head, head_c0, head_c1);
        const std::int64_t h0_head = head_c0 / n_per_head;
        const std::int64_t h1_head = head_c1 / n_per_head;
        if (input_idx == 0) {
            // Operand A, stored (heads * M) x Lq: the touched heads' full
            // inner-dim slices, for the output token rows only.
            const std::int64_t m_per_head = c / heads;
            in.c0 = h0_head * m_per_head;
            in.c1 = h1_head * m_per_head;
            in.h0 = out.h0;
            in.h1 = out.h1;
            in.w0 = 0;
            in.w1 = iw;
            return in;
        }
        if (transposeB) {
            // Operand B stored (heads * M) x N; output columns index B's
            // token rows. A k-range confined to one head touches exactly
            // those rows; a range spanning heads conservatively takes all.
            const std::int64_t m_per_head = c / heads;
            in.c0 = h0_head * m_per_head;
            in.c1 = h1_head * m_per_head;
            if (h1_head - h0_head == 1) {
                in.h0 = out.c0 - h0_head * n_per_head;
                in.h1 = out.c1 - h0_head * n_per_head;
            } else {
                in.h0 = 0;
                in.h1 = n_per_head;
            }
            in.w0 = 0;
            in.w1 = 1;
            return in;
        }
        // Operand B stored (heads * N) x M; output channels map 1:1 onto
        // B's channels, and the whole inner dim (B's token rows) is needed.
        in.c0 = out.c0;
        in.c1 = out.c1;
        in.h0 = 0;
        in.h1 = ih2();
        in.w0 = 0;
        in.w1 = 1;
        return in;
      }
      case LayerKind::Softmax: {
        // Normalization runs over each head's full column range.
        const std::int64_t per_head = k / heads;
        expandToGroups(out.c0, out.c1, per_head, in.c0, in.c1);
        in.h0 = out.h0;
        in.h1 = out.h1;
        in.w0 = out.w0;
        in.w1 = out.w1;
        return in;
      }
      case LayerKind::LayerNorm:
        // Per-token statistics need every channel of the touched tokens.
        in.c0 = 0;
        in.c1 = c;
        in.h0 = out.h0;
        in.h1 = out.h1;
        in.w0 = out.w0;
        in.w1 = out.w1;
        return in;
      case LayerKind::Upsample:
        // Channels map 1:1; each output pixel reads source pixel
        // (h / scale, w / scale), so a region shrinks by the scale.
        in.c0 = out.c0;
        in.c1 = out.c1;
        in.h0 = out.h0 / strideH;
        in.h1 = (out.h1 + strideH - 1) / strideH;
        in.w0 = out.w0 / strideW;
        in.w1 = (out.w1 + strideW - 1) / strideW;
        return in;
    }
    GEMINI_PANIC("unhandled layer kind in requiredInput");
}

std::string
Layer::checkValid() const
{
    std::ostringstream err;
    auto fail = [&](auto &&...msg) {
        ((err << msg), ...);
        return err.str();
    };
    if (k <= 0 || h <= 0 || w <= 0)
        return fail(name, ": non-positive ofmap dims");
    if (c <= 0 || ih <= 0 || iw <= 0)
        return fail(name, ": non-positive ifmap dims");
    if (r <= 0 || s <= 0 || strideH <= 0 || strideW <= 0)
        return fail(name, ": non-positive window/stride");
    if (padH < 0 || padW < 0)
        return fail(name, ": negative padding");
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::FC:
        if (groups < 1 || c % groups || k % groups)
            return fail(name, ": groups must divide c and k");
        if (h != (ih + 2 * padH - r) / strideH + 1)
            return fail(name, ": conv height arithmetic mismatch");
        if (w != (iw + 2 * padW - s) / strideW + 1)
            return fail(name, ": conv width arithmetic mismatch");
        break;
      case LayerKind::Pool:
        if (c != k)
            return fail(name, ": pool must preserve channels");
        if (h != (ih + 2 * padH - r) / strideH + 1)
            return fail(name, ": pool height arithmetic mismatch");
        if (w != (iw + 2 * padW - s) / strideW + 1)
            return fail(name, ": pool width arithmetic mismatch");
        break;
      case LayerKind::Eltwise:
        if (inputs.size() < 2)
            return fail(name, ": eltwise needs >=2 inputs");
        if (c != k || ih != h || iw != w)
            return fail(name, ": eltwise must preserve shape");
        break;
      case LayerKind::Concat: {
        if (inputs.size() < 2)
            return fail(name, ": concat needs >=2 inputs");
        if (inputChannels.size() != inputs.size())
            return fail(name, ": concat inputChannels not recorded");
        std::int64_t sum = 0;
        for (auto ch : inputChannels)
            sum += ch;
        if (sum != k || c != k || ih != h || iw != w)
            return fail(name, ": concat channel bookkeeping broken");
        break;
      }
      case LayerKind::Matmul:
        if (inputs.size() != 2)
            return fail(name, ": matmul needs exactly 2 inputs");
        if (heads < 1 || c % heads || k % heads)
            return fail(name, ": heads must divide both channel dims");
        if (w != 1 || iw != 1)
            return fail(name, ": matmul layers are token-major (w == 1)");
        break;
      case LayerKind::Softmax:
        if (heads < 1 || k % heads)
            return fail(name, ": heads must divide channels");
        [[fallthrough]];
      case LayerKind::LayerNorm:
        if (c != k || ih != h || iw != w)
            return fail(name, ": normalization must preserve shape");
        break;
      case LayerKind::Upsample:
        if (c != k)
            return fail(name, ": upsample must preserve channels");
        if (h != ih * strideH || w != iw * strideW)
            return fail(name, ": upsample scale arithmetic mismatch");
        if (r != 1 || s != 1 || padH != 0 || padW != 0)
            return fail(name, ": upsample takes no window/padding");
        break;
    }
    // External-input layers record one entry (the network input width).
    if (!inputChannels.empty() &&
        inputChannels.size() != std::max<std::size_t>(inputs.size(), 1))
        return fail(name, ": inputChannels size mismatch");
    return {};
}

} // namespace gemini::dnn
