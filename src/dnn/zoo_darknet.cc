/**
 * @file
 * Darknet-family detection workloads. YOLOv3-tiny (Redmon & Farhadi,
 * "YOLOv3: An Incremental Improvement") is the canonical edge detector: a
 * strided max-pool trunk, a feature-pyramid branch that 2x-upsamples the
 * deep features and concatenates them with the stride-16 trunk features,
 * and one 1x1 detection head per scale. Structurally it exercises what the
 * classification zoo does not: a cross-scale concat fed by an Upsample
 * layer, and two independent network outputs.
 */

#include "src/common/logging.hh"
#include "src/dnn/zoo.hh"

namespace gemini::dnn::zoo {

Graph
yolov3Tiny(int num_classes)
{
    GEMINI_ASSERT(num_classes >= 1, "yolov3Tiny needs >= 1 class");
    // 3 anchors per scale, each predicting 4 box coords + objectness +
    // class scores.
    const std::int64_t head_k = 3 * (5 + num_classes);

    GraphBuilder b("yolov3_tiny", 3, 416, 416);

    // ---- Backbone: conv/maxpool trunk ----------------------------------
    LayerId x = b.conv("conv1", GraphBuilder::kInput, 16, 3, 1, 1);
    x = b.pool("pool1", x, 2, 2, 0);               // 208x208
    x = b.conv("conv2", x, 32, 3, 1, 1);
    x = b.pool("pool2", x, 2, 2, 0);               // 104x104
    x = b.conv("conv3", x, 64, 3, 1, 1);
    x = b.pool("pool3", x, 2, 2, 0);               // 52x52
    x = b.conv("conv4", x, 128, 3, 1, 1);
    x = b.pool("pool4", x, 2, 2, 0);               // 26x26
    const LayerId route26 = b.conv("conv5", x, 256, 3, 1, 1); // 256x26x26
    x = b.pool("pool5", route26, 2, 2, 0);         // 13x13
    x = b.conv("conv6", x, 512, 3, 1, 1);
    // Darknet's size-2 stride-1 "same" maxpool keeps 13x13 via asymmetric
    // padding; the floor-arithmetic equivalent is a 3x3/1 pad-1 window
    // (same stride, same output shape, one extra tap per position).
    x = b.pool("pool6", x, 3, 1, 1);               // 13x13
    x = b.conv("conv7", x, 1024, 3, 1, 1);         // 1024x13x13

    // ---- Scale 1 head (stride 32, 13x13) -------------------------------
    const LayerId neck = b.pointwise("conv8", x, 256); // route point
    LayerId h1 = b.conv("conv9", neck, 512, 3, 1, 1);
    b.pointwise("detect1", h1, head_k);            // 255x13x13 output

    // ---- Scale 2 head (stride 16, 26x26) via upsampled pyramid ---------
    LayerId up = b.pointwise("conv10", neck, 128);
    up = b.upsample("upsample", up, 2);            // 128x26x26
    const LayerId cat = b.concat("route", {up, route26}); // 384x26x26
    LayerId h2 = b.conv("conv11", cat, 256, 3, 1, 1);
    b.pointwise("detect2", h2, head_k);            // 255x26x26 output

    return b.finish();
}

} // namespace gemini::dnn::zoo
