#include "src/dnn/parser.hh"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "src/dnn/zoo.hh"

namespace gemini::dnn {

namespace {

/** Parse failure carrying the offending line for the error message. */
struct ParseError
{
    int line;
    std::string reason;
};

/** Tokenized directive: opcode, layer name, key=value attributes. */
struct Directive
{
    std::string op;
    std::string name;
    std::map<std::string, std::string> attrs;
};

bool
tokenize(const std::string &line, int line_no, Directive &out,
         ParseError &err)
{
    std::istringstream iss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (iss >> tok) {
        if (tok[0] == '#')
            break;
        tokens.push_back(tok);
    }
    if (tokens.empty())
        return false; // blank/comment line: caller skips
    if (tokens.size() < 2) {
        err = {line_no, "directive needs an opcode and a name"};
        out.op = "!error";
        return true;
    }
    out.op = tokens[0];
    out.name = tokens[1];
    if (out.op == "model")
        return true; // positional dims parsed by the model branch
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0) {
            err = {line_no, "expected key=value, got '" + tokens[i] + "'"};
            out.op = "!error";
            return true;
        }
        out.attrs[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    return true;
}

/** "NxM" or "N" into a pair. */
bool
parsePair(const std::string &value, std::int64_t &a, std::int64_t &b)
{
    const auto x = value.find('x');
    try {
        if (x == std::string::npos) {
            a = b = std::stoll(value);
        } else {
            a = std::stoll(value.substr(0, x));
            b = std::stoll(value.substr(x + 1));
        }
    } catch (...) {
        return false;
    }
    return true;
}

/** Required integer attribute. */
bool
intAttr(const Directive &d, const std::string &key, std::int64_t &out)
{
    auto it = d.attrs.find(key);
    if (it == d.attrs.end())
        return false;
    try {
        out = std::stoll(it->second);
    } catch (...) {
        return false;
    }
    return true;
}

/** Split a comma list of layer references. */
std::vector<std::string>
splitRefs(const std::string &value)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : value) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

} // namespace

std::optional<Graph>
parseModel(const std::string &text, std::string *error)
{
    auto fail = [error](int line, const std::string &reason)
        -> std::optional<Graph> {
        if (error)
            *error = "line " + std::to_string(line) + ": " + reason;
        return std::nullopt;
    };

    std::istringstream stream(text);
    std::string line;
    int line_no = 0;

    std::optional<GraphBuilder> builder;
    std::map<std::string, LayerId> names;

    auto resolve = [&](const std::string &ref, LayerId &id) {
        if (ref == "input") {
            id = GraphBuilder::kInput;
            return true;
        }
        auto it = names.find(ref);
        if (it == names.end())
            return false;
        id = it->second;
        return true;
    };

    while (std::getline(stream, line)) {
        ++line_no;
        Directive d;
        ParseError err{line_no, ""};
        if (!tokenize(line, line_no, d, err))
            continue;
        if (d.op == "!error")
            return fail(err.line, err.reason);

        if (d.op == "model") {
            if (builder)
                return fail(line_no, "duplicate model directive");
            // name then three dims as positional-ish attrs: we accept
            // "model <name> <c> <h> <w>" via a re-tokenize.
            std::istringstream iss(line);
            std::string kw, name;
            std::int64_t c = 0, h = 0, w = 0;
            if (!(iss >> kw >> name >> c >> h >> w) || c <= 0 || h <= 0 ||
                w <= 0)
                return fail(line_no,
                            "expected: model <name> <c> <h> <w>");
            builder.emplace(name, c, h, w);
            continue;
        }
        if (!builder)
            return fail(line_no, "first directive must be 'model'");
        if (names.count(d.name) || d.name == "input")
            return fail(line_no, "duplicate layer name '" + d.name + "'");

        auto need_in = [&](std::size_t min_refs,
                           std::vector<LayerId> &ids) -> bool {
            auto it = d.attrs.find("in");
            if (it == d.attrs.end())
                return false;
            for (const std::string &ref : splitRefs(it->second)) {
                LayerId id;
                if (!resolve(ref, id))
                    return false;
                ids.push_back(id);
            }
            return ids.size() >= min_refs;
        };

        LayerId id = -1;
        if (d.op == "conv") {
            std::vector<LayerId> in;
            std::int64_t k, stride, groups = 1;
            std::int64_t kh = 0, kw = 0, ph = 0, pw = 0;
            auto kern = d.attrs.find("kernel");
            auto pad = d.attrs.find("pad");
            if (!need_in(1, in) || !intAttr(d, "k", k) ||
                kern == d.attrs.end() ||
                !parsePair(kern->second, kh, kw) ||
                !intAttr(d, "stride", stride) || pad == d.attrs.end() ||
                !parsePair(pad->second, ph, pw))
                return fail(line_no, "conv needs in/k/kernel/stride/pad");
            intAttr(d, "groups", groups);
            id = builder->conv(d.name, in[0], k, kh, kw, stride, ph, pw,
                               groups);
        } else if (d.op == "fc") {
            std::vector<LayerId> in;
            std::int64_t k;
            if (!need_in(1, in) || !intAttr(d, "k", k))
                return fail(line_no, "fc needs in/k");
            id = builder->fc(d.name, in[0], k);
        } else if (d.op == "pool") {
            std::vector<LayerId> in;
            std::int64_t kernel, stride, pad;
            if (!need_in(1, in) || !intAttr(d, "kernel", kernel) ||
                !intAttr(d, "stride", stride) || !intAttr(d, "pad", pad))
                return fail(line_no, "pool needs in/kernel/stride/pad");
            id = builder->pool(d.name, in[0], kernel, stride, pad);
        } else if (d.op == "gap") {
            std::vector<LayerId> in;
            if (!need_in(1, in))
                return fail(line_no, "gap needs in");
            id = builder->globalPool(d.name, in[0]);
        } else if (d.op == "eltwise" || d.op == "concat") {
            std::vector<LayerId> in;
            if (!need_in(2, in))
                return fail(line_no, d.op + " needs in=<a>,<b>[,...]");
            if (d.op == "eltwise") {
                // GraphBuilder takes an initializer_list; forward the
                // common two/three-input cases.
                if (in.size() == 2)
                    id = builder->eltwise(d.name, {in[0], in[1]});
                else if (in.size() == 3)
                    id = builder->eltwise(d.name, {in[0], in[1], in[2]});
                else
                    return fail(line_no, "eltwise supports 2-3 inputs");
            } else {
                id = builder->concat(d.name, in);
            }
        } else if (d.op == "matmul") {
            std::vector<LayerId> in;
            std::int64_t heads, transpose;
            if (!need_in(2, in) || in.size() != 2 ||
                !intAttr(d, "heads", heads) ||
                !intAttr(d, "transpose", transpose))
                return fail(line_no,
                            "matmul needs in=<a>,<b> heads= transpose=");
            id = builder->matmul(d.name, in[0], in[1], heads,
                                 transpose != 0);
        } else if (d.op == "softmax") {
            std::vector<LayerId> in;
            std::int64_t heads;
            if (!need_in(1, in) || !intAttr(d, "heads", heads))
                return fail(line_no, "softmax needs in/heads");
            id = builder->softmax(d.name, in[0], heads);
        } else if (d.op == "layernorm") {
            std::vector<LayerId> in;
            if (!need_in(1, in))
                return fail(line_no, "layernorm needs in");
            id = builder->layerNorm(d.name, in[0]);
        } else {
            return fail(line_no, "unknown directive '" + d.op + "'");
        }
        names[d.name] = id;
    }
    if (!builder)
        return fail(line_no, "empty description (no model directive)");
    if (names.empty())
        return fail(line_no, "model has no layers");
    return builder->finish();
}

std::optional<Graph>
parseModelFile(const std::string &path, std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        if (error)
            *error = "cannot open file: " + path;
        return std::nullopt;
    }
    std::ostringstream oss;
    oss << f.rdbuf();
    return parseModel(oss.str(), error);
}

} // namespace gemini::dnn
