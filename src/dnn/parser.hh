/**
 * @file
 * The Model Parser (Fig. 4's input stage): reads a line-based DNN
 * description and builds a dnn::Graph through the GraphBuilder, so models
 * can be supplied as files instead of C++ builders.
 *
 * Format (one directive per line; '#' starts a comment):
 *
 *   model <name> <in_channels> <in_height> <in_width>
 *   conv      <name> in=<ref> k=<int> kernel=<int>[x<int>] stride=<int>
 *             pad=<int>[x<int>] [groups=<int>]
 *   fc        <name> in=<ref> k=<int>
 *   pool      <name> in=<ref> kernel=<int> stride=<int> pad=<int>
 *   gap       <name> in=<ref>
 *   eltwise   <name> in=<ref>,<ref>[,...]
 *   concat    <name> in=<ref>,<ref>[,...]
 *   matmul    <name> in=<refA>,<refB> heads=<int> transpose=<0|1>
 *   softmax   <name> in=<ref> heads=<int>
 *   layernorm <name> in=<ref>
 *
 * <ref> is a previously declared layer name, or `input` for the network
 * input. The first non-comment line must be the `model` directive.
 */

#ifndef GEMINI_DNN_PARSER_HH
#define GEMINI_DNN_PARSER_HH

#include <optional>
#include <string>

#include "src/dnn/graph.hh"

namespace gemini::dnn {

/**
 * Parse a model description from text.
 *
 * @param text  the whole description
 * @param error receives a "line N: reason" message on failure (optional)
 * @return the finalized graph, or nullopt on any syntax/semantic error
 */
std::optional<Graph> parseModel(const std::string &text,
                                std::string *error = nullptr);

/** Parse a model description from a file. */
std::optional<Graph> parseModelFile(const std::string &path,
                                    std::string *error = nullptr);

} // namespace gemini::dnn

#endif // GEMINI_DNN_PARSER_HH
